// BatchSimulator: randomized lane-by-lane bit-identity against the scalar
// CycleSimulator on every generated architecture (sequential SVM, parallel
// SVM, MLP), ragged final batches, back-to-back free-running inference,
// per-lane toggle accounting, and the threaded verify_workload driver.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "pml/arch/mlp_circuit.hpp"
#include "pml/arch/parallel_svm.hpp"
#include "pml/arch/sequential_svm.hpp"
#include "pml/core/verify.hpp"
#include "pml/sim/batch_sim.hpp"
#include "pml/sim/cycle_sim.hpp"

namespace pml::sim {
namespace {

using netlist::Module;
using quant::QuantizedClassifier;
using quant::QuantizedMlp;
using quant::QuantizedSvm;

constexpr std::size_t kLanes = BatchSimulator::kLanes;

// --- deterministic model generators (same style as the arch tests) ----------

std::uint64_t xorshift(std::uint64_t& s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}

QuantizedSvm random_svm(int classes, int features, int input_bits,
                        int weight_bits, std::uint64_t seed) {
  QuantizedSvm q;
  q.strategy = ml::MulticlassStrategy::kOneVsRest;
  q.num_classes = classes;
  q.input_format = quant::input_format(input_bits);
  q.weight_format = fixed::FixedFormat{.total_bits = weight_bits,
                                       .frac_bits = weight_bits - 1,
                                       .is_signed = true};
  std::uint64_t s = seed * 0x9E3779B97F4A7C15ull + 1;
  const std::int64_t wmin = q.weight_format.min_code();
  const std::int64_t wmax = q.weight_format.max_code();
  for (int k = 0; k < classes; ++k) {
    QuantizedClassifier c;
    for (int j = 0; j < features; ++j) {
      c.w.push_back(wmin + static_cast<std::int64_t>(
                               xorshift(s) % static_cast<std::uint64_t>(
                                                 wmax - wmin + 1)));
    }
    c.b = -8 + static_cast<std::int64_t>(xorshift(s) % 17);
    q.classifiers.push_back(std::move(c));
  }
  return q;
}

QuantizedMlp random_mlp(int inputs, int hidden, int outputs, int input_bits,
                        std::uint64_t seed) {
  QuantizedMlp q;
  q.num_inputs = inputs;
  q.num_hidden = hidden;
  q.num_outputs = outputs;
  q.input_format = quant::input_format(input_bits);
  q.w1_format =
      fixed::FixedFormat{.total_bits = 4, .frac_bits = 3, .is_signed = true};
  q.hidden_format =
      fixed::FixedFormat{.total_bits = 4, .frac_bits = 4, .is_signed = false};
  q.w2_format =
      fixed::FixedFormat{.total_bits = 4, .frac_bits = 3, .is_signed = true};
  q.hidden_shift = 3;
  std::uint64_t s = seed ^ 0x5555AAAAull;
  auto rand_w = [&s]() {
    return -8 + static_cast<std::int64_t>(xorshift(s) % 16);
  };
  q.w1.resize(static_cast<std::size_t>(hidden));
  q.b1.resize(static_cast<std::size_t>(hidden));
  for (int i = 0; i < hidden; ++i) {
    for (int j = 0; j < inputs; ++j) {
      q.w1[static_cast<std::size_t>(i)].push_back(rand_w());
    }
    q.b1[static_cast<std::size_t>(i)] = rand_w() * 4;
  }
  q.w2.resize(static_cast<std::size_t>(outputs));
  q.b2.resize(static_cast<std::size_t>(outputs));
  for (int k = 0; k < outputs; ++k) {
    for (int i = 0; i < hidden; ++i) {
      q.w2[static_cast<std::size_t>(k)].push_back(rand_w());
    }
    q.b2[static_cast<std::size_t>(k)] = rand_w() * 2;
  }
  return q;
}

std::vector<std::vector<std::int64_t>> random_samples(std::size_t count,
                                                      int features,
                                                      std::int64_t max_code,
                                                      std::uint64_t seed) {
  std::uint64_t s = seed | 1;
  std::vector<std::vector<std::int64_t>> samples(count);
  for (auto& row : samples) {
    for (int j = 0; j < features; ++j) {
      row.push_back(static_cast<std::int64_t>(
          xorshift(s) % static_cast<std::uint64_t>(max_code + 1)));
    }
  }
  return samples;
}

/// Drive scalar and batch simulators with the same sample stream (batch
/// packs kLanes samples per pass, scalar replays them one by one — both
/// free-running, no reset between samples/batches) and require every
/// output port to agree on every sample.  For `cycles` == 0 the circuit is
/// combinational and settled once per sample.
void expect_lanewise_equal(const Module& m, int cycles,
                           const std::vector<std::vector<std::int64_t>>& xs) {
  const auto lv = levelize_shared(m);
  CycleSimulator scalar(m, lv);
  BatchSimulator batch(m, lv);
  const std::size_t features = xs[0].size();
  std::vector<const netlist::Port*> ports;
  for (std::size_t j = 0; j < features; ++j) {
    ports.push_back(m.find_input("x" + std::to_string(j)));
    ASSERT_NE(ports.back(), nullptr);
  }
  std::uint64_t lane_values[kLanes];
  for (std::size_t begin = 0; begin < xs.size(); begin += kLanes) {
    const std::size_t count = std::min(kLanes, xs.size() - begin);
    batch.set_active_lanes(count);
    for (std::size_t j = 0; j < features; ++j) {
      for (std::size_t lane = 0; lane < count; ++lane) {
        lane_values[lane] =
            static_cast<std::uint64_t>(xs[begin + lane][j]);
      }
      batch.set_port(*ports[j], lane_values, count);
    }
    if (cycles == 0) {
      batch.propagate();
    } else {
      for (int c = 0; c < cycles; ++c) batch.step();
    }
    for (std::size_t lane = 0; lane < count; ++lane) {
      for (std::size_t j = 0; j < features; ++j) {
        scalar.set_port(*ports[j],
                        static_cast<std::uint64_t>(xs[begin + lane][j]));
      }
      if (cycles == 0) {
        scalar.propagate();
      } else {
        for (int c = 0; c < cycles; ++c) scalar.step();
      }
      for (const netlist::Port& out : m.output_ports()) {
        EXPECT_EQ(batch.port_unsigned(out, lane), scalar.port_unsigned(out))
            << "port '" << out.name << "' diverges on sample "
            << begin + lane;
      }
    }
  }
}

// --- lane-by-lane equivalence across architectures ---------------------------

TEST(BatchSim, SequentialSvmMatchesScalarLaneByLane) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const QuantizedSvm q =
        random_svm(3 + static_cast<int>(seed % 3), 4, 3, 4, seed);
    const auto circuit = arch::build_sequential_svm(q);
    // 150 samples: two full batches plus a ragged 22-lane final batch.
    const auto xs =
        random_samples(150, 4, q.input_format.max_code(), seed * 77);
    expect_lanewise_equal(circuit.module, circuit.cycles_per_inference, xs);
  }
}

TEST(BatchSim, ParallelSvmMatchesScalarLaneByLane) {
  const QuantizedSvm q = random_svm(4, 3, 3, 4, 11);
  const auto circuit = arch::build_parallel_svm(q);
  const auto xs = random_samples(100, 3, q.input_format.max_code(), 99);
  expect_lanewise_equal(circuit.module, /*cycles=*/0, xs);
}

TEST(BatchSim, MlpMatchesScalarLaneByLane) {
  const QuantizedMlp q = random_mlp(3, 4, 3, 3, 21);
  const auto circuit = arch::build_mlp_circuit(q);
  const auto xs = random_samples(100, 3, q.input_format.max_code(), 123);
  expect_lanewise_equal(circuit.module, /*cycles=*/0, xs);
}

TEST(BatchSim, BackToBackFreeRunningMatchesSoftwareModel) {
  // Three consecutive batches through ONE simulator, no reset: the
  // sequential SVM must classify every batch correctly from whatever state
  // the previous batch left behind (the paper's free-running protocol).
  const QuantizedSvm q = random_svm(5, 4, 3, 4, 31);
  const auto circuit = arch::build_sequential_svm(q);
  const auto xs = random_samples(3 * kLanes, 4, q.input_format.max_code(), 7);
  BatchSimulator batch(circuit.module);
  const netlist::Port* cls = circuit.module.find_output("class");
  ASSERT_NE(cls, nullptr);
  std::uint64_t lane_values[kLanes];
  for (std::size_t begin = 0; begin < xs.size(); begin += kLanes) {
    for (std::size_t j = 0; j < 4; ++j) {
      for (std::size_t lane = 0; lane < kLanes; ++lane) {
        lane_values[lane] = static_cast<std::uint64_t>(xs[begin + lane][j]);
      }
      batch.set_port("x" + std::to_string(j), lane_values, kLanes);
    }
    for (int c = 0; c < circuit.cycles_per_inference; ++c) batch.step();
    for (std::size_t lane = 0; lane < kLanes; ++lane) {
      EXPECT_EQ(static_cast<int>(batch.port_unsigned(*cls, lane)),
                q.predict_codes(xs[begin + lane]))
          << "sample " << begin + lane;
    }
  }
  EXPECT_EQ(batch.cycles(),
            3u * static_cast<std::uint64_t>(circuit.cycles_per_inference));
}

// --- toggle accounting -------------------------------------------------------

TEST(BatchSim, SingleActiveLaneTogglesMatchScalarExactly) {
  const QuantizedSvm q = random_svm(3, 3, 3, 4, 41);
  const auto circuit = arch::build_sequential_svm(q);
  const auto lv = levelize_shared(circuit.module);
  CycleSimulator scalar(circuit.module, lv);
  BatchSimulator batch(circuit.module, lv);
  batch.set_active_lanes(1);
  const auto xs = random_samples(5, 3, q.input_format.max_code(), 17);
  for (const auto& x : xs) {
    for (std::size_t j = 0; j < x.size(); ++j) {
      const auto code = static_cast<std::uint64_t>(x[j]);
      scalar.set_port("x" + std::to_string(j), code);
      batch.set_port("x" + std::to_string(j), &code, 1);
    }
    for (int c = 0; c < circuit.cycles_per_inference; ++c) {
      scalar.step();
      batch.step();
    }
  }
  // With one active lane the masked popcounts must reproduce the scalar
  // functional toggle counts net for net.
  EXPECT_EQ(batch.toggles(), scalar.toggles());
}

TEST(BatchSim, InactiveLanesDoNotPolluteToggles) {
  const QuantizedSvm q = random_svm(3, 3, 3, 4, 43);
  const auto circuit = arch::build_sequential_svm(q);
  BatchSimulator one(circuit.module);
  BatchSimulator noisy(circuit.module);
  one.set_active_lanes(1);
  noisy.set_active_lanes(1);
  const auto xs = random_samples(kLanes, 3, q.input_format.max_code(), 5);
  std::uint64_t lane_values[kLanes];
  for (std::size_t j = 0; j < 3; ++j) {
    for (std::size_t lane = 0; lane < kLanes; ++lane) {
      lane_values[lane] = static_cast<std::uint64_t>(xs[lane][j]);
    }
    // `one` sees only lane 0's sample; `noisy` additionally carries 63
    // churning inactive lanes.
    one.set_port("x" + std::to_string(j), lane_values, 1);
    noisy.set_port("x" + std::to_string(j), lane_values, kLanes);
  }
  for (int c = 0; c < circuit.cycles_per_inference; ++c) {
    one.step();
    noisy.step();
  }
  EXPECT_EQ(one.toggles(), noisy.toggles());
}

// --- API edges ---------------------------------------------------------------

TEST(BatchSim, BroadcastAndSignedReads) {
  Module m;
  const auto p = m.add_input_port("p", 4);
  m.add_output_port("y", {p[0], p[1], p[2], p[3]});
  BatchSimulator sim(m);
  sim.set_port_broadcast("p", 0b1000);
  sim.propagate();
  for (const std::size_t lane : {std::size_t{0}, std::size_t{63}}) {
    EXPECT_EQ(sim.port_unsigned("y", lane), 0b1000u);
    EXPECT_EQ(sim.port_signed("y", lane), -8);
  }
}

TEST(BatchSim, DffInitAndReset) {
  Module m;
  const auto d = m.add_input_port("d", 1)[0];
  m.add_output_port("q", {m.dff(d, /*init=*/true)});
  BatchSimulator sim(m);
  EXPECT_EQ(sim.net_lanes(m.find_output("q")->nets[0]), ~std::uint64_t{0});
  sim.set_net(d, 0);
  sim.step();
  EXPECT_EQ(sim.net_lanes(m.find_output("q")->nets[0]), 0u);
  sim.reset();
  EXPECT_EQ(sim.net_lanes(m.find_output("q")->nets[0]), ~std::uint64_t{0});
  EXPECT_EQ(sim.cycles(), 0u);
}

TEST(BatchSim, BoundsChecks) {
  Module m;
  (void)m.add_input_port("p", 1);
  BatchSimulator sim(m);
  EXPECT_THROW(sim.set_active_lanes(0), std::out_of_range);
  EXPECT_THROW(sim.set_active_lanes(65), std::out_of_range);
  EXPECT_THROW(sim.set_port("nope", nullptr, 0), std::invalid_argument);
  EXPECT_THROW((void)sim.port_unsigned("nope", 0), std::invalid_argument);
  EXPECT_THROW((void)sim.port_unsigned("p", kLanes), std::out_of_range);
  EXPECT_THROW(BatchSimulator(m, nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace pml::sim

// --- verify_workload ---------------------------------------------------------

namespace pml::core {
namespace {

using quant::QuantizedSvm;

QuantizedSvm small_model() {
  QuantizedSvm q;
  q.strategy = ml::MulticlassStrategy::kOneVsRest;
  q.num_classes = 3;
  q.input_format = quant::input_format(3);
  q.weight_format =
      fixed::FixedFormat{.total_bits = 4, .frac_bits = 3, .is_signed = true};
  q.classifiers = {quant::QuantizedClassifier{{3, -2}, 1},
                   quant::QuantizedClassifier{{-1, 4}, 0},
                   quant::QuantizedClassifier{{2, 2}, -3}};
  return q;
}

CircuitWorkload exhaustive_workload(const QuantizedSvm& q, int repeats) {
  CircuitWorkload wl;
  for (int r = 0; r < repeats; ++r) {
    for (std::int64_t a = 0; a <= 7; ++a) {
      for (std::int64_t b = 0; b <= 7; ++b) {
        wl.feature_codes.push_back({a, b});
        wl.expected_class.push_back(q.predict_codes({a, b}));
      }
    }
  }
  return wl;
}

TEST(VerifyWorkload, PassesOnCorrectWorkloadRaggedBatch) {
  const auto q = small_model();
  auto circuit = arch::build_sequential_svm(q);
  // 3 * 64 = 192 samples = exactly 3 batches; 2 repeats = 128 + ragged.
  const auto wl = exhaustive_workload(q, 2);  // 128 samples
  const VerifyResult r =
      verify_workload(circuit.module, circuit.cycles_per_inference, wl);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.samples, 128u);
  EXPECT_EQ(r.mismatches, 0u);
  EXPECT_FALSE(r.first.has_value());
}

TEST(VerifyWorkload, DetectsPlantedMismatch) {
  const auto q = small_model();
  auto circuit = arch::build_sequential_svm(q);
  auto wl = exhaustive_workload(q, 2);
  wl.expected_class[70] = (wl.expected_class[70] + 1) % 3;  // second batch
  VerifyOptions opts;
  opts.num_threads = 1;
  const VerifyResult r = verify_workload(
      circuit.module, circuit.cycles_per_inference, wl, opts);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.mismatches, 1u);
  ASSERT_TRUE(r.first.has_value());
  EXPECT_EQ(r.first->sample, 70u);
  EXPECT_EQ(r.first->expected, wl.expected_class[70]);
  EXPECT_NE(r.first->predicted, r.first->expected);
}

TEST(VerifyWorkload, MultiThreadAgreesWithSingleThread) {
  const auto q = small_model();
  auto circuit = arch::build_parallel_svm(q);
  auto wl = exhaustive_workload(q, 5);  // 320 samples = 5 batches
  for (const std::size_t s : {std::size_t{3}, std::size_t{200}}) {
    wl.expected_class[s] = (wl.expected_class[s] + 1) % 3;
  }
  VerifyOptions single;
  single.num_threads = 1;
  VerifyOptions multi;
  multi.num_threads = 4;
  const VerifyResult a = verify_workload(
      circuit.module, circuit.cycles_per_inference, wl, single);
  const VerifyResult b = verify_workload(
      circuit.module, circuit.cycles_per_inference, wl, multi);
  EXPECT_EQ(a.mismatches, 2u);
  EXPECT_EQ(b.mismatches, 2u);
  ASSERT_TRUE(a.first.has_value());
  ASSERT_TRUE(b.first.has_value());
  EXPECT_EQ(a.first->sample, 3u);
  EXPECT_EQ(b.first->sample, 3u);
}

TEST(VerifyWorkload, FailFastCapStopsScheduling) {
  const auto q = small_model();
  auto circuit = arch::build_sequential_svm(q);
  auto wl = exhaustive_workload(q, 2);
  for (auto& e : wl.expected_class) e = (e + 1) % 3;  // nothing matches...
  VerifyOptions opts;
  opts.num_threads = 1;
  opts.max_mismatches = 1;
  // Pin the 64-lane reference backend so "the second batch" exists: a
  // wider backend would scan this whole workload in one batch.
  opts.backend = sim::Backend::kU64;
  const VerifyResult r = verify_workload(
      circuit.module, circuit.cycles_per_inference, wl, opts);
  EXPECT_FALSE(r.ok());
  // One full batch is still scanned, but the second is never scheduled.
  EXPECT_LE(r.mismatches, sim::BatchSimulator::kLanes);
  EXPECT_GE(r.mismatches, 1u);
}

TEST(VerifyWorkload, SharedLevelizationAndMalformedWorkloads) {
  const auto q = small_model();
  auto circuit = arch::build_sequential_svm(q);
  VerifyOptions opts;
  opts.levelization = sim::levelize_shared(circuit.module);
  const auto wl = exhaustive_workload(q, 1);
  EXPECT_TRUE(verify_workload(circuit.module, circuit.cycles_per_inference,
                              wl, opts)
                  .ok());
  CircuitWorkload empty;
  EXPECT_THROW(
      (void)verify_workload(circuit.module, 3, empty),
      std::invalid_argument);
  CircuitWorkload lopsided;
  lopsided.feature_codes = {{1, 2}};
  EXPECT_THROW(
      (void)verify_workload(circuit.module, 3, lopsided),
      std::invalid_argument);
  CircuitWorkload ragged;
  ragged.feature_codes = {{1, 2}, {5}};
  ragged.expected_class = {0, 1};
  EXPECT_THROW(
      (void)verify_workload(circuit.module, 3, ragged),
      std::invalid_argument);
}

}  // namespace
}  // namespace pml::core
