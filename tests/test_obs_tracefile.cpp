// Acceptance test for the real traced bench run: the bench_table1_trace_gen
// ctest fixture runs `bench_table1 --quick --smoke --metrics --trace <f>`
// into the build tree and this test parses the file back with the
// independent reference parser.  Gates the PR's observability claim:
// well-formed Chrome trace JSON, >= 6 distinct phase spans, >= 2 thread
// tracks, and a stamped run manifest.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "json_test_util.hpp"

namespace {

std::string read_trace_file() {
  const char* path = std::getenv("PML_TRACE_FILE");
  if (path == nullptr || *path == '\0') {
    return {};  // run outside ctest: skip (the fixture sets the env var)
  }
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open trace file " << path
                         << " (did the bench_table1_trace_gen fixture run?)";
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(ObsTraceFile, BenchTable1TraceIsValidAndMultiThreaded) {
  const std::string text = read_trace_file();
  if (text.empty()) {
    GTEST_SKIP() << "PML_TRACE_FILE not set; run via ctest";
  }

  const pml::testjson::Value doc = pml::testjson::parse(text);
  ASSERT_TRUE(doc.is_object());

  // The run manifest is stamped into otherData.
  const pml::testjson::Value& manifest = doc.at("otherData").at("manifest");
  EXPECT_EQ(manifest.at("tool").string, "pml");
  EXPECT_FALSE(manifest.at("compiler").string.empty());
  EXPECT_FALSE(manifest.at("version").string.empty());

  std::set<std::string> span_names;
  std::set<double> tids;
  std::set<double> named_tids;
  std::size_t x_events = 0;
  for (const pml::testjson::Value& ev : doc.at("traceEvents").items) {
    ASSERT_TRUE(ev.is_object());
    const std::string& ph = ev.at("ph").string;
    if (ph == "M") {
      EXPECT_EQ(ev.at("name").string, "thread_name");
      named_tids.insert(ev.at("tid").number);
      continue;
    }
    ASSERT_EQ(ph, "X") << "unexpected event phase";
    ++x_events;
    span_names.insert(ev.at("name").string);
    tids.insert(ev.at("tid").number);
    EXPECT_GE(ev.at("ts").number, 0.0);
    EXPECT_GE(ev.at("dur").number, 0.0);
  }

  EXPECT_GT(x_events, 0u) << "empty trace";
  // The evaluate pipeline alone contributes evaluate, evaluate.optimize,
  // .levelize, .verify, .sta, .activity, .power plus opt.run/opt.pass.*
  // and the worker spans — well above the acceptance floor.
  EXPECT_GE(span_names.size(), 6u)
      << "fewer than 6 distinct phase spans in the traced bench run";
  // bench_table1 forces >= 2 worker threads when tracing, so the fan-outs
  // must appear as at least two distinct thread tracks.
  EXPECT_GE(tids.size(), 2u) << "trace has fewer than 2 thread tracks";
  // Every track that carries spans is named via metadata events.
  for (const double tid : tids) {
    EXPECT_EQ(named_tids.count(tid), 1u)
        << "tid " << tid << " has no thread_name metadata";
  }

  // Spot-check the load-bearing spans the PR instruments.
  EXPECT_EQ(span_names.count("evaluate"), 1u);
  EXPECT_EQ(span_names.count("evaluate.verify"), 1u);
  EXPECT_EQ(span_names.count("evaluate.power"), 1u);
  EXPECT_EQ(span_names.count("opt.run"), 1u);
  EXPECT_EQ(span_names.count("verify.worker"), 1u);
}

}  // namespace
