// SVM quantization: format fitting, integer inference vs float model,
// score bounds, CSD approximation.

#include <gtest/gtest.h>

#include <cmath>

#include "pml/fixed/csd.hpp"
#include "pml/ml/metrics.hpp"
#include "pml/ml/multiclass.hpp"
#include "pml/ml/scaler.hpp"
#include "pml/ml/synthetic_datasets.hpp"
#include "pml/quant/svm_quant.hpp"

namespace pml::quant {
namespace {

ml::MulticlassSvm trained_ovr(ml::UciProfile profile, ml::Dataset* test_out) {
  const ml::Dataset d = ml::make_uci_like(profile);
  const ml::Split s = ml::stratified_split(d, 0.8, 61);
  ml::MinMaxScaler scaler;
  scaler.fit(s.train);
  *test_out = scaler.transform(s.test);
  ml::MulticlassTrainOptions opts;
  return ml::train_one_vs_rest(scaler.transform(s.train), opts);
}

TEST(Formats, InputFormatSpansUnitInterval) {
  const auto f = input_format(4);
  EXPECT_FALSE(f.is_signed);
  EXPECT_EQ(f.total_bits, 4);
  EXPECT_EQ(f.frac_bits, 4);
  EXPECT_EQ(fixed::quantize(1.0, f), 15) << "1.0 saturates to max code";
  EXPECT_EQ(fixed::quantize(0.0, f), 0);
  EXPECT_THROW((void)input_format(0), std::invalid_argument);
}

TEST(Formats, FitSignedFormatCoversMaxAbs) {
  const auto f = fit_signed_format(3.7, 8);
  EXPECT_TRUE(f.is_signed);
  EXPECT_GE(f.max_value(), 3.7);
  EXPECT_LE(f.min_value(), -3.7);
  // Resolution is maximized: one fewer integer bit would clip.
  const auto finer = fixed::FixedFormat{.total_bits = 8,
                                        .frac_bits = f.frac_bits + 1,
                                        .is_signed = true};
  EXPECT_LT(finer.max_value(), 3.7);
}

TEST(Formats, SnapAndQuantizeAgree) {
  const auto f = input_format(5);
  const std::vector<double> x = {0.0, 0.1, 0.5, 0.73, 1.0};
  const auto codes = quantize_features(x, f);
  const auto snapped = snap_features(x, f);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_DOUBLE_EQ(snapped[i], fixed::dequantize(codes[i], f));
  }
}

TEST(QuantizedSvm, HighPrecisionMatchesFloatModel) {
  ml::Dataset test;
  const auto model = trained_ovr(ml::UciProfile::kCardio, &test);
  const auto q = quantize_svm(model, 8, 10);
  const auto float_preds = model.predict_all(test.X);
  const auto q_preds = q.predict_all(test.X);
  std::size_t agree = 0;
  for (std::size_t i = 0; i < float_preds.size(); ++i) {
    if (float_preds[i] == q_preds[i]) ++agree;
  }
  EXPECT_GT(static_cast<double>(agree) / static_cast<double>(float_preds.size()),
            0.98);
}

TEST(QuantizedSvm, DecisionIsExactIntegerDotProduct) {
  ml::Dataset test;
  const auto model = trained_ovr(ml::UciProfile::kRedWine, &test);
  const auto q = quantize_svm(model, 5, 6);
  const auto xq = quantize_features(test.X[0], q.input_format);
  for (std::size_t t = 0; t < q.classifiers.size(); ++t) {
    std::int64_t manual = q.classifiers[t].b;
    for (std::size_t j = 0; j < xq.size(); ++j) {
      manual += q.classifiers[t].w[j] * xq[j];
    }
    EXPECT_EQ(q.decision(t, xq), manual);
  }
}

TEST(QuantizedSvm, ScoreBoundNeverExceeded) {
  ml::Dataset test;
  const auto model = trained_ovr(ml::UciProfile::kWhiteWine, &test);
  const auto q = quantize_svm(model, 4, 5);
  const std::int64_t bound = q.score_bound();
  const std::int64_t limit = std::int64_t{1} << (q.score_bits() - 1);
  EXPECT_LE(bound, limit - 1);
  for (const auto& x : test.X) {
    const auto xq = quantize_features(x, q.input_format);
    for (std::size_t t = 0; t < q.classifiers.size(); ++t) {
      const std::int64_t s = q.decision(t, xq);
      EXPECT_LE(std::llabs(s), bound);
    }
  }
}

TEST(QuantizedSvm, WeightCodesRespectFormat) {
  ml::Dataset test;
  const auto model = trained_ovr(ml::UciProfile::kDermatology, &test);
  for (const int bits : {4, 5, 6, 8}) {
    const auto q = quantize_svm(model, 4, bits);
    EXPECT_EQ(q.weight_format.total_bits, bits);
    for (const auto& c : q.classifiers) {
      for (const auto w : c.w) {
        EXPECT_GE(w, q.weight_format.min_code());
        EXPECT_LE(w, q.weight_format.max_code());
      }
    }
  }
}

TEST(QuantizedSvm, PreservesStrategyAndPairs) {
  const ml::Dataset d = ml::make_uci_like(ml::UciProfile::kCardio);
  const ml::Split s = ml::stratified_split(d, 0.9, 71);
  ml::MulticlassTrainOptions opts;
  const auto ovo = ml::train_one_vs_one(s.train, opts);
  const auto q = quantize_svm(ovo, 6, 6);
  EXPECT_EQ(q.strategy, ml::MulticlassStrategy::kOneVsOne);
  EXPECT_EQ(q.pairs, ovo.pairs);
  EXPECT_EQ(q.classifiers.size(), ovo.classifiers.size());
}

TEST(QuantizedSvm, AccuracyDegradesGracefully) {
  ml::Dataset test;
  const auto model = trained_ovr(ml::UciProfile::kCardio, &test);
  const double float_acc =
      ml::accuracy(model.predict_all(test.X), test.y);
  const auto q8 = quantize_svm(model, 8, 8);
  const double q8_acc = ml::accuracy(q8.predict_all(test.X), test.y);
  EXPECT_GT(q8_acc, float_acc - 0.02) << "8-bit should be near-lossless";
}

TEST(ApproximateSvm, TruncatesEveryWeightCsd) {
  ml::Dataset test;
  const auto model = trained_ovr(ml::UciProfile::kCardio, &test);
  const auto q = quantize_svm(model, 8, 8);
  for (const int digits : {1, 2, 3}) {
    const auto approx = approximate_svm_csd(q, digits);
    for (std::size_t t = 0; t < approx.classifiers.size(); ++t) {
      for (std::size_t j = 0; j < approx.classifiers[t].w.size(); ++j) {
        EXPECT_LE(fixed::csd_cost(approx.classifiers[t].w[j]), digits);
      }
      EXPECT_EQ(approx.classifiers[t].b, q.classifiers[t].b)
          << "bias stays exact";
    }
  }
}

TEST(ApproximateSvm, ApproximationErrorShrinksWithDigits) {
  ml::Dataset test;
  const auto model = trained_ovr(ml::UciProfile::kCardio, &test);
  const auto q = quantize_svm(model, 8, 8);
  auto weight_error = [&](const QuantizedSvm& approx) {
    double err = 0;
    for (std::size_t t = 0; t < q.classifiers.size(); ++t) {
      for (std::size_t j = 0; j < q.classifiers[t].w.size(); ++j) {
        err += std::abs(static_cast<double>(q.classifiers[t].w[j] -
                                            approx.classifiers[t].w[j]));
      }
    }
    return err;
  };
  const double e1 = weight_error(approximate_svm_csd(q, 1));
  const double e2 = weight_error(approximate_svm_csd(q, 2));
  const double e3 = weight_error(approximate_svm_csd(q, 3));
  EXPECT_GE(e1, e2);
  EXPECT_GE(e2, e3);
}

}  // namespace
}  // namespace pml::quant
