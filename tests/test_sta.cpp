// Static timing analysis: path lengths, sources/sinks, fanout loading,
// critical-path extraction.

#include <gtest/gtest.h>

#include "pml/cells/library.hpp"
#include "pml/netlist/module.hpp"
#include "pml/sta/timing.hpp"

namespace pml::sta {
namespace {

using netlist::CellType;
using netlist::Module;

cells::CellLibrary unit_library() {
  // A library with unit delays and no fanout penalty makes depth counting
  // exact.
  auto lib = cells::CellLibrary::egfet();
  for (int t = 0; t < netlist::kNumCellTypes; ++t) {
    lib.params(static_cast<CellType>(t)).delay_ms = 1.0;
  }
  lib.calibration().fanout_delay_factor = 0.0;
  lib.calibration().dff_setup_ms = 0.5;
  return lib;
}

TEST(Sta, ChainDelayIsDepthTimesUnit) {
  Module m;
  const auto a = m.add_input_port("a", 1)[0];
  auto n = a;
  for (int i = 0; i < 7; ++i) n = m.add_gate_raw(CellType::kInv, n);
  m.add_output_port("y", {n});
  const auto rep = analyze(m, unit_library());
  EXPECT_DOUBLE_EQ(rep.critical_path_ms, 7.0);
  EXPECT_EQ(rep.logic_depth, 7);
  EXPECT_DOUBLE_EQ(rep.max_frequency_hz, 1000.0 / 7.0);
  EXPECT_NE(rep.sink_description.find("output 'y'"), std::string::npos);
}

TEST(Sta, TakesWorstOfParallelPaths) {
  Module m;
  const auto p = m.add_input_port("p", 2);
  auto slow = p[0];
  for (int i = 0; i < 5; ++i) slow = m.add_gate_raw(CellType::kInv, slow);
  const auto fast = m.add_gate_raw(CellType::kInv, p[1]);
  const auto y = m.add_gate_raw(CellType::kAnd2, slow, fast);
  m.add_output_port("y", {y});
  const auto rep = analyze(m, unit_library());
  EXPECT_DOUBLE_EQ(rep.critical_path_ms, 6.0);  // 5 inverters + AND
}

TEST(Sta, DffPathsIncludeClkToQAndSetup) {
  Module m;
  const auto d_in = m.add_input_port("d", 1)[0];
  const auto q = m.dff(d_in);
  const auto x = m.add_gate_raw(CellType::kInv, q);
  (void)m.dff(x);
  m.add_output_port("y", {q});
  const auto lib = unit_library();
  const auto rep = analyze(m, lib);
  // Worst path: Q (clk-to-q = 1) -> INV (1) -> D setup (0.5) = 2.5;
  // the PI->DFF path is 0 + 0.5 and PO path is 1.0.
  EXPECT_DOUBLE_EQ(rep.critical_path_ms, 2.5);
  EXPECT_NE(rep.sink_description.find("setup"), std::string::npos);
}

TEST(Sta, CriticalPathExtractionWalksTheChain) {
  Module m;
  const auto a = m.add_input_port("a", 1)[0];
  auto n = a;
  for (int i = 0; i < 4; ++i) n = m.add_gate_raw(CellType::kXor2, n, a);
  m.add_output_port("y", {n});
  const auto rep = analyze(m, unit_library());
  EXPECT_EQ(rep.logic_depth, 4);
  ASSERT_GE(rep.critical_path.size(), 2u);
  // Arrivals along the path are non-decreasing.
  for (std::size_t i = 1; i < rep.critical_path.size(); ++i) {
    EXPECT_GE(rep.critical_path[i].arrival_ms,
              rep.critical_path[i - 1].arrival_ms);
  }
  EXPECT_EQ(rep.critical_path.back().net, m.find_output("y")->nets[0]);
}

TEST(Sta, FanoutLoadingSlowsHighFanoutNets) {
  auto build = [](int sinks) {
    Module m;
    const auto a = m.add_input_port("a", 1)[0];
    const auto n = m.add_gate_raw(CellType::kInv, a);
    std::vector<netlist::NetId> outs;
    for (int i = 0; i < sinks; ++i) {
      outs.push_back(m.add_gate_raw(CellType::kInv, n));
    }
    m.add_output_port("y", outs);
    return m;
  };
  auto lib = unit_library();
  lib.calibration().fanout_delay_factor = 0.1;
  const auto narrow = analyze(build(1), lib);
  const auto wide = analyze(build(21), lib);
  EXPECT_DOUBLE_EQ(narrow.critical_path_ms, 2.0);
  // Inverter driving 21 sinks: 1 * (1 + 0.1*20) = 3, plus final INV = 4.
  EXPECT_DOUBLE_EQ(wide.critical_path_ms, 4.0);
}

TEST(Sta, ConstantDesignGetsNominalPeriod) {
  Module m;
  m.add_output_port("y", {netlist::kConst1});
  const auto rep = analyze(m, unit_library());
  EXPECT_GT(rep.critical_path_ms, 0.0);
  EXPECT_GT(rep.max_frequency_hz, 0.0);
}

TEST(Sta, SharedLevelizationOverloadMatchesAndRejectsNull) {
  Module m;
  const auto a = m.add_input_port("a", 2);
  const auto x = m.add_gate_raw(CellType::kXor2, a[0], a[1]);
  const auto q = m.dff(x, false);
  m.add_output_port("y", {m.add_gate_raw(CellType::kAnd2, q, a[0])});
  const auto lib = unit_library();
  const auto lv = sim::levelize_shared(m);
  const auto fresh = analyze(m, lib);
  const auto shared = analyze(m, lib, lv);
  EXPECT_DOUBLE_EQ(shared.critical_path_ms, fresh.critical_path_ms);
  EXPECT_EQ(shared.logic_depth, fresh.logic_depth);
  EXPECT_EQ(shared.sink_description, fresh.sink_description);
  EXPECT_EQ(shared.critical_path.size(), fresh.critical_path.size());
  EXPECT_THROW((void)analyze(m, lib, nullptr), std::invalid_argument);
}

TEST(Sta, RealLibraryGivesHzRangeForClassifierDepth) {
  // ~50 levels of printed logic must land in the tens-of-Hz range the
  // paper reports.
  Module m;
  const auto a = m.add_input_port("a", 1)[0];
  auto n = a;
  for (int i = 0; i < 50; ++i) n = m.add_gate_raw(CellType::kXor2, n, a);
  m.add_output_port("y", {n});
  const auto rep = analyze(m, cells::CellLibrary::egfet());
  EXPECT_GT(rep.max_frequency_hz, 5.0);
  EXPECT_LT(rep.max_frequency_hz, 60.0);
}

}  // namespace
}  // namespace pml::sta
