// PML_OBS_DISABLED contract: with the macro defined before the obs
// headers, every instrumentation macro compiles to `(void)0` — no counter
// registration, no span recording — while the classes themselves stay
// fully usable (only the macros are gated, so mixed-TU builds have no ODR
// hazard).  This binary is the only TU in its test, so the registry must
// stay completely empty after heavy macro "use".

#define PML_OBS_DISABLED

#include <gtest/gtest.h>

#include "pml/obs/metrics.hpp"
#include "pml/obs/trace.hpp"

namespace pml::obs {
namespace {

TEST(ObsDisabled, MacrosAreNoOpsAndRegisterNothing) {
  for (int i = 0; i < 100000; ++i) {
    PML_OBS_COUNT("disabled.counter", 1);
    PML_OBS_SPAN("disabled.span");
  }
  {
    PML_OBS_TIMED("disabled.timer");
  }
  const MetricsSnapshot snap = snapshot_metrics();
  EXPECT_TRUE(snap.counters.empty())
      << "a disabled macro registered a counter";
  EXPECT_TRUE(snap.durations.empty())
      << "a disabled macro registered a histogram";
}

TEST(ObsDisabled, ZeroCounterInvariantUnderTracer) {
  // Even with a tracer installed, disabled macros record no spans.
  Tracer t;
  Tracer::install(&t);
  for (int i = 0; i < 1000; ++i) {
    PML_OBS_SPAN("disabled.traced_span");
    PML_OBS_COUNT("disabled.traced_counter", 7);
  }
  Tracer::uninstall();
  EXPECT_TRUE(t.events().empty());
  EXPECT_TRUE(snapshot_metrics().counters.empty());
}

TEST(ObsDisabled, ClassesRemainUsable) {
  // The explicit API is NOT gated: services that want always-on metrics
  // call it directly and it must keep working in disabled builds.
  Counter& c = counter("disabled.explicit");
  c.add(3);
  EXPECT_EQ(c.value(), 3u);
  Tracer tr;
  Tracer::install(&tr);
  { ScopedSpan span("disabled.explicit_span"); }
  Tracer::uninstall();
  EXPECT_EQ(tr.events().size(), 1u);
  EXPECT_EQ(tr.events()[0].name, "disabled.explicit_span");
}

}  // namespace
}  // namespace pml::obs
