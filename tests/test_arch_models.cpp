// Analytic models: printed batteries and the crossbar-ROM storage
// alternative the paper rejected.

#include <gtest/gtest.h>

#include "pml/arch/battery.hpp"
#include "pml/arch/crossbar_rom.hpp"

namespace pml::arch {
namespace {

TEST(Battery, MolexBudgetIs30mW) {
  const PrintedBattery& molex = molex_30mw();
  EXPECT_EQ(molex.power_budget_mw, 30.0);
  EXPECT_TRUE(molex.can_power(22.9));   // the paper's peak "ours"
  EXPECT_TRUE(molex.can_power(17.6));
  EXPECT_FALSE(molex.can_power(57.4));  // parallel SVM [2] on Cardio
  EXPECT_FALSE(molex.can_power(364.4)); // parallel SVM [2] on PenDigits
}

TEST(Battery, LifetimeInverselyProportionalToPower) {
  const PrintedBattery& molex = molex_30mw();
  const double at10 = molex.lifetime_hours(10.0);
  const double at20 = molex.lifetime_hours(20.0);
  EXPECT_GT(at10, 0.0);
  EXPECT_NEAR(at10, 2.0 * at20, 1e-9);
  EXPECT_EQ(molex.lifetime_hours(100.0), 0.0) << "infeasible load";
  EXPECT_EQ(molex.lifetime_hours(0.0), 0.0);
}

TEST(Battery, ClassificationsPerCharge) {
  const PrintedBattery b{"test", 30.0, 1.0};  // 1 mWh = 3600 mJ
  EXPECT_NEAR(b.classifications_per_charge(1.0), 3600.0, 1e-9);
  EXPECT_NEAR(b.classifications_per_charge(2.46), 3600.0 / 2.46, 1e-6);
  EXPECT_EQ(b.classifications_per_charge(0.0), 0.0);
}

TEST(Battery, CatalogueIsOrderedByBudget) {
  const auto& batteries = printed_batteries();
  ASSERT_GE(batteries.size(), 3u);
  for (std::size_t i = 1; i < batteries.size(); ++i) {
    EXPECT_GT(batteries[i - 1].power_budget_mw, batteries[i].power_budget_mw);
  }
}

TEST(CrossbarRom, AdcDominatesSmallStorage) {
  // A classifier-sized store: ~66 words x 6 bits (Cardio sequential SVM).
  const StorageCost xbar = crossbar_rom_cost(66, 6);
  const CrossbarRomParams p;
  const double adc_area =
      6 * (p.sense_area_mm2 + p.adc_resolution_bits * p.adc_area_mm2_per_bit) /
      100.0;
  EXPECT_GT(adc_area / xbar.area_cm2, 0.8)
      << "read-out must dominate at small sizes";
}

TEST(CrossbarRom, MuxWinsSmallCrossbarWinsHuge) {
  // The paper: "for the required storage size, crossbars prove more
  // costly".  Small (classifier-scale) storage: MUX cheaper.
  const StorageCost mux_small = mux_storage_cost_estimate(66, 6);
  const StorageCost xbar_small = crossbar_rom_cost(66, 6);
  EXPECT_LT(mux_small.area_cm2, xbar_small.area_cm2);
  EXPECT_LT(mux_small.power_mw, xbar_small.power_mw);
  // Very large storage: crossbar density eventually wins.
  const StorageCost mux_big = mux_storage_cost_estimate(100000, 6);
  const StorageCost xbar_big = crossbar_rom_cost(100000, 6);
  EXPECT_GT(mux_big.area_cm2, xbar_big.area_cm2);
}

TEST(CrossbarRom, CostsScaleMonotonically) {
  double prev_area = 0.0;
  for (const std::size_t words : {16u, 64u, 256u, 1024u}) {
    const StorageCost c = crossbar_rom_cost(words, 8);
    EXPECT_GT(c.area_cm2, prev_area);
    prev_area = c.area_cm2;
  }
}

}  // namespace
}  // namespace pml::arch
