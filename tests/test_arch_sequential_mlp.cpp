// The folded sequential MLP extension: exhaustive bit-exactness against
// the integer model, protocol behaviour, and the folding area advantage.

#include <gtest/gtest.h>

#include <string>

#include "pml/arch/mlp_circuit.hpp"
#include "pml/arch/sequential_mlp.hpp"
#include "pml/sim/cycle_sim.hpp"

namespace pml::arch {
namespace {

using quant::QuantizedMlp;

QuantizedMlp tiny_mlp(int inputs, int hidden, int outputs, int input_bits,
                      std::uint64_t seed) {
  QuantizedMlp q;
  q.num_inputs = inputs;
  q.num_hidden = hidden;
  q.num_outputs = outputs;
  q.input_format = quant::input_format(input_bits);
  q.w1_format =
      fixed::FixedFormat{.total_bits = 4, .frac_bits = 3, .is_signed = true};
  q.hidden_format =
      fixed::FixedFormat{.total_bits = 4, .frac_bits = 4, .is_signed = false};
  q.w2_format =
      fixed::FixedFormat{.total_bits = 4, .frac_bits = 3, .is_signed = true};
  q.hidden_shift = 3;
  std::uint64_t s = seed ^ 0xFEED5EEDull;
  auto next = [&s]() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  };
  auto rand_w = [&next]() {
    return -8 + static_cast<std::int64_t>(next() % 16);
  };
  q.w1.resize(static_cast<std::size_t>(hidden));
  q.b1.resize(static_cast<std::size_t>(hidden));
  for (int i = 0; i < hidden; ++i) {
    for (int j = 0; j < inputs; ++j) {
      q.w1[static_cast<std::size_t>(i)].push_back(rand_w());
    }
    q.b1[static_cast<std::size_t>(i)] = rand_w() * 4;
  }
  q.w2.resize(static_cast<std::size_t>(outputs));
  q.b2.resize(static_cast<std::size_t>(outputs));
  for (int k = 0; k < outputs; ++k) {
    for (int i = 0; i < hidden; ++i) {
      q.w2[static_cast<std::size_t>(k)].push_back(rand_w());
    }
    q.b2[static_cast<std::size_t>(k)] = rand_w() * 2;
  }
  return q;
}

int classify(sim::CycleSimulator& sim, const SequentialMlpCircuit& circuit,
             const std::vector<std::int64_t>& xq) {
  for (std::size_t j = 0; j < xq.size(); ++j) {
    sim.set_port("x" + std::to_string(j), static_cast<std::uint64_t>(xq[j]));
  }
  for (int c = 0; c < circuit.cycles_per_inference; ++c) sim.step();
  return static_cast<int>(sim.port_unsigned("class"));
}

class SeqMlpShape
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(SeqMlpShape, BitExactExhaustive) {
  const auto [inputs, hidden, outputs] = GetParam();
  const QuantizedMlp q =
      tiny_mlp(inputs, hidden, outputs, 2,
               static_cast<std::uint64_t>(inputs * 5 + hidden * 3 + outputs));
  SequentialMlpCircuit circuit = build_sequential_mlp(q);
  ASSERT_EQ(circuit.module.validate(), std::nullopt);
  EXPECT_EQ(circuit.cycles_per_inference, hidden + outputs);
  sim::CycleSimulator sim(circuit.module);

  const std::int64_t xmax = q.input_format.max_code();
  std::vector<std::int64_t> xq(static_cast<std::size_t>(inputs), 0);
  std::size_t total = 1;
  for (int j = 0; j < inputs; ++j) {
    total *= static_cast<std::size_t>(xmax + 1);
  }
  for (std::size_t idx = 0; idx < total; ++idx) {
    std::size_t rest = idx;
    for (int j = 0; j < inputs; ++j) {
      xq[static_cast<std::size_t>(j)] =
          static_cast<std::int64_t>(rest % static_cast<std::size_t>(xmax + 1));
      rest /= static_cast<std::size_t>(xmax + 1);
    }
    EXPECT_EQ(classify(sim, circuit, xq), q.predict_codes(xq))
        << "input " << idx;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SeqMlpShape,
    ::testing::Values(std::make_tuple(2, 2, 2), std::make_tuple(3, 2, 3),
                      std::make_tuple(2, 3, 4), std::make_tuple(4, 2, 2),
                      std::make_tuple(2, 4, 3), std::make_tuple(3, 3, 5)));

TEST(SequentialMlp, BackToBackWithoutReset) {
  const QuantizedMlp q = tiny_mlp(3, 3, 3, 3, 77);
  SequentialMlpCircuit circuit = build_sequential_mlp(q);
  sim::CycleSimulator sim(circuit.module);
  const std::vector<std::vector<std::int64_t>> samples = {
      {0, 5, 7}, {7, 0, 2}, {3, 3, 3}, {1, 6, 4}};
  for (const auto& xq : samples) {
    EXPECT_EQ(classify(sim, circuit, xq), q.predict_codes(xq));
  }
}

TEST(SequentialMlp, DonePulsesAtEndOfSweep) {
  const QuantizedMlp q = tiny_mlp(2, 2, 3, 2, 5);
  SequentialMlpCircuit circuit = build_sequential_mlp(q);
  sim::CycleSimulator sim(circuit.module);
  sim.set_port("x0", 1);
  sim.set_port("x1", 2);
  const int total = circuit.cycles_per_inference;
  for (int c = 0; c < total; ++c) {
    sim.propagate();
    EXPECT_EQ(sim.port_unsigned("done"), c == total - 1 ? 1u : 0u)
        << "cycle " << c;
    sim.step();
  }
}

TEST(SequentialMlp, FoldingShrinksComputeVsParallel) {
  // A larger network where folding should pay in area.
  const QuantizedMlp q = tiny_mlp(12, 6, 4, 4, 9);
  const auto seq = build_sequential_mlp(q);
  const auto par = build_mlp_circuit(q);
  EXPECT_LT(seq.module.cells().size(), par.module.cells().size());
}

}  // namespace
}  // namespace pml::arch
