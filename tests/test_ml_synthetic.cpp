// Synthetic UCI-like dataset generators: shapes, priors, determinism,
// and the calibrated difficulty ordering the evaluation relies on.

#include <gtest/gtest.h>

#include <cmath>

#include "pml/ml/metrics.hpp"
#include "pml/ml/multiclass.hpp"
#include "pml/ml/scaler.hpp"
#include "pml/ml/synthetic_datasets.hpp"

namespace pml::ml {
namespace {

TEST(Profiles, TableMatchesPaper) {
  const auto& profiles = all_profiles();
  ASSERT_EQ(profiles.size(), 5u);
  EXPECT_EQ(profile_info(UciProfile::kCardio).num_features, 21);
  EXPECT_EQ(profile_info(UciProfile::kCardio).num_classes, 3);
  EXPECT_EQ(profile_info(UciProfile::kDermatology).num_features, 34);
  EXPECT_EQ(profile_info(UciProfile::kDermatology).num_classes, 6);
  EXPECT_EQ(profile_info(UciProfile::kPenDigits).num_features, 16);
  EXPECT_EQ(profile_info(UciProfile::kPenDigits).num_classes, 10);
  EXPECT_EQ(profile_info(UciProfile::kRedWine).num_features, 11);
  EXPECT_EQ(profile_info(UciProfile::kRedWine).num_classes, 6);
  EXPECT_EQ(profile_info(UciProfile::kWhiteWine).num_features, 11);
  EXPECT_EQ(profile_info(UciProfile::kWhiteWine).num_classes, 7);
}

class ProfileShape : public ::testing::TestWithParam<UciProfile> {};

TEST_P(ProfileShape, MatchesDeclaredDimensions) {
  const auto& info = profile_info(GetParam());
  const Dataset d = make_uci_like(GetParam());
  EXPECT_EQ(d.size(), info.num_samples);
  EXPECT_EQ(d.num_features, info.num_features);
  EXPECT_EQ(d.num_classes, info.num_classes);
  for (const auto& row : d.X) {
    EXPECT_EQ(static_cast<int>(row.size()), info.num_features);
  }
  for (const int y : d.y) {
    EXPECT_GE(y, 0);
    EXPECT_LT(y, info.num_classes);
  }
  // Every class is represented.
  for (const std::size_t c : d.class_counts()) EXPECT_GT(c, 0u);
}

TEST_P(ProfileShape, DeterministicPerSeed) {
  const Dataset a = make_uci_like(GetParam(), 123);
  const Dataset b = make_uci_like(GetParam(), 123);
  const Dataset c = make_uci_like(GetParam(), 124);
  EXPECT_EQ(a.X, b.X);
  EXPECT_EQ(a.y, b.y);
  EXPECT_NE(a.X, c.X);
}

INSTANTIATE_TEST_SUITE_P(All, ProfileShape,
                         ::testing::Values(UciProfile::kCardio,
                                           UciProfile::kDermatology,
                                           UciProfile::kPenDigits,
                                           UciProfile::kRedWine,
                                           UciProfile::kWhiteWine));

TEST(CardioProfile, ImbalancedPriors) {
  const Dataset d = make_uci_like(UciProfile::kCardio);
  const auto counts = d.class_counts();
  const double f0 = static_cast<double>(counts[0]) / static_cast<double>(d.size());
  EXPECT_NEAR(f0, 0.78, 0.04) << "normal class dominates";
  EXPECT_GT(counts[1], counts[2]);
}

TEST(WineProfiles, MajorityClassesDominate) {
  for (const auto profile : {UciProfile::kRedWine, UciProfile::kWhiteWine}) {
    const Dataset d = make_uci_like(profile);
    const auto counts = d.class_counts();
    std::size_t top2 = 0;
    std::vector<std::size_t> sorted(counts.begin(), counts.end());
    std::sort(sorted.rbegin(), sorted.rend());
    top2 = sorted[0] + sorted[1];
    EXPECT_GT(static_cast<double>(top2) / static_cast<double>(d.size()), 0.7);
  }
}

TEST(MakeBlobs, RespectsWeightsAndNoise) {
  std::vector<BlobSpec> blobs = {
      {{0.2, 0.2}, 0.01, 0, 3.0},
      {{0.8, 0.8}, 0.01, 1, 1.0},
  };
  const Dataset d = make_blobs("b", 2, 2, blobs, 4000, 0.0, 9);
  const auto counts = d.class_counts();
  EXPECT_NEAR(static_cast<double>(counts[0]) / 4000.0, 0.75, 0.03);
  EXPECT_THROW((void)make_blobs("b", 2, 2, {}, 10, 0.0, 9),
               std::invalid_argument);
}

TEST(MakeOrdinal, AdjacentClassesConfuseMore) {
  // Train a classifier on an ordinal dataset; confusion should concentrate
  // next to the diagonal.
  const Dataset d = make_ordinal("ord", 8, 5, {0.2, 0.2, 0.2, 0.2, 0.2},
                                 0.10, 0.0, 4000, 17);
  const Split s = stratified_split(d, 0.8, 18);
  MinMaxScaler scaler;
  scaler.fit(s.train);
  MulticlassTrainOptions opts;
  const auto model = train_one_vs_one(scaler.transform(s.train), opts);
  const auto preds = model.predict_all(scaler.transform(s.test).X);
  const auto cm = confusion_matrix(preds, s.test.y, 5);
  std::int64_t near = 0, far = 0;
  for (int t = 0; t < 5; ++t) {
    for (int p = 0; p < 5; ++p) {
      if (t == p) continue;
      (std::abs(t - p) == 1 ? near : far) += cm[t][p];
    }
  }
  EXPECT_GT(near, far) << "errors should be mostly between adjacent classes";
  EXPECT_THROW((void)make_ordinal("o", 3, 2, {1.0}, 0.1, 0.0, 10, 1),
               std::invalid_argument);
}

TEST(Difficulty, DermEasierThanWines) {
  // The calibrated ordering that drives Table I's accuracy column:
  // Dermatology ~98%, Cardio ~93%, wines < 65%.
  auto acc_of = [](UciProfile p) {
    const Dataset d = make_uci_like(p);
    const Split s = stratified_split(d, 0.8, 51);
    MinMaxScaler scaler;
    scaler.fit(s.train);
    MulticlassTrainOptions opts;
    const auto model = train_one_vs_rest(scaler.transform(s.train), opts);
    return accuracy(model.predict_all(scaler.transform(s.test).X), s.test.y);
  };
  const double derm = acc_of(UciProfile::kDermatology);
  const double cardio = acc_of(UciProfile::kCardio);
  const double rw = acc_of(UciProfile::kRedWine);
  EXPECT_GT(derm, 0.94);
  EXPECT_GT(cardio, 0.85);
  EXPECT_LT(rw, 0.70);
  EXPECT_GT(derm, rw + 0.25);
}

}  // namespace
}  // namespace pml::ml
