// Sequential blocks (registers, counters) and reduction networks
// (argmax trees, popcount).

#include <gtest/gtest.h>

#include <algorithm>

#include "pml/netlist/module.hpp"
#include "pml/synth/reduce.hpp"
#include "pml/synth/seq.hpp"
#include "sim_test_util.hpp"

namespace pml::synth {
namespace {

using netlist::kConst1;
using netlist::Module;
using testutil::Harness;

TEST(RegisterBus, AlwaysEnabledLoadsEveryCycle) {
  Module m;
  const Bus d{m.add_input_port("d", 4)};
  const Bus q = register_bus(m, d, kConst1, /*init=*/5);
  m.add_output_port("q", q.bits);
  Harness h(m);
  EXPECT_EQ(h.unsigned_of(q), 5u) << "power-on value";
  h.set("d", 9);
  h.step();
  EXPECT_EQ(h.unsigned_of(q), 9u);
}

TEST(RegisterBus, EnableHoldsValue) {
  Module m;
  const Bus d{m.add_input_port("d", 4)};
  const auto en = m.add_input_port("en", 1)[0];
  const Bus q = register_bus(m, d, en, 0);
  Harness h(m);
  h.set("d", 7);
  h.set("en", 1);
  h.step();
  EXPECT_EQ(h.unsigned_of(q), 7u);
  h.set("d", 3);
  h.set("en", 0);
  h.step();
  EXPECT_EQ(h.unsigned_of(q), 7u) << "disabled register must hold";
  h.set("en", 1);
  h.step();
  EXPECT_EQ(h.unsigned_of(q), 3u);
}

class CounterModulo : public ::testing::TestWithParam<int> {};

TEST_P(CounterModulo, CountsAndWraps) {
  const int modulo = GetParam();
  Module m;
  const Counter c = counter_mod(m, modulo);
  Harness h(m);
  for (int cycle = 0; cycle < 3 * modulo + 1; ++cycle) {
    const auto expected = static_cast<std::uint64_t>(cycle % modulo);
    EXPECT_EQ(h.unsigned_of(c.count), expected) << "cycle " << cycle;
    EXPECT_EQ(h.net(c.at_last), expected == static_cast<std::uint64_t>(modulo - 1));
    h.step();
  }
}

INSTANTIATE_TEST_SUITE_P(Moduli, CounterModulo,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 10, 45));

TEST(Counter, RejectsNonPositiveModulo) {
  Module m;
  EXPECT_THROW((void)counter_mod(m, 0), std::invalid_argument);
}

TEST(Increment, WrapsModuloPowerOfTwo) {
  Module m;
  const Bus a{m.add_input_port("a", 3)};
  const Bus inc = increment(m, a);
  Harness h(m);
  for (std::uint64_t v = 0; v < 8; ++v) {
    h.set("a", v);
    h.run();
    EXPECT_EQ(h.unsigned_of(inc), (v + 1) % 8);
  }
}

class ArgmaxSize : public ::testing::TestWithParam<int> {};

TEST_P(ArgmaxSize, MatchesStdMaxElementWithFirstTie) {
  const int n = GetParam();
  Module m;
  std::vector<Bus> scores;
  for (int i = 0; i < n; ++i) {
    scores.push_back(Bus{m.add_input_port("s" + std::to_string(i), 5)});
  }
  const ArgMax am = argmax_signed(m, scores);
  Harness h(m);
  std::uint64_t state = 0xDEADBEEF + static_cast<std::uint64_t>(n);
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<std::int64_t> vals(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      // Small range (with negatives) to provoke plenty of ties.
      const std::uint64_t raw = (state >> 40) % 12;
      const std::int64_t sv = static_cast<std::int64_t>(raw) - 4;
      h.set("s" + std::to_string(i),
            static_cast<std::uint64_t>(sv) & 0x1F);
      vals[static_cast<std::size_t>(i)] = sv;
    }
    h.run();
    const auto it = std::max_element(vals.begin(), vals.end());
    const auto expected = static_cast<std::uint64_t>(it - vals.begin());
    EXPECT_EQ(h.unsigned_of(am.index), expected) << "n=" << n;
    EXPECT_EQ(h.signed_of(am.value), *it);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ArgmaxSize, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 10));

TEST(ArgmaxSigned, NegativeScores) {
  Module m;
  std::vector<Bus> scores;
  for (int i = 0; i < 3; ++i) {
    scores.push_back(Bus{m.add_input_port("s" + std::to_string(i), 4)});
  }
  const ArgMax am = argmax_signed(m, scores);
  Harness h(m);
  h.set("s0", 0b1000);  // -8
  h.set("s1", 0b1111);  // -1
  h.set("s2", 0b1100);  // -4
  h.run();
  EXPECT_EQ(h.unsigned_of(am.index), 1u);
  EXPECT_EQ(h.signed_of(am.value), -1);
}

TEST(ArgmaxUnsigned, TreatsValuesAsUnsigned) {
  Module m;
  std::vector<Bus> counts;
  for (int i = 0; i < 2; ++i) {
    counts.push_back(Bus{m.add_input_port("c" + std::to_string(i), 4)});
  }
  const ArgMax am = argmax_unsigned(m, counts);
  Harness h(m);
  h.set("c0", 0b1111);  // 15 unsigned
  h.set("c1", 0b0001);
  h.run();
  EXPECT_EQ(h.unsigned_of(am.index), 0u);
}

TEST(Argmax, RejectsEmpty) {
  Module m;
  EXPECT_THROW((void)argmax_signed(m, {}), std::invalid_argument);
}

class PopcountSize : public ::testing::TestWithParam<int> {};

TEST_P(PopcountSize, CountsSetBits) {
  const int n = GetParam();
  Module m;
  const auto bits = m.add_input_port("b", n);
  const Bus cnt = popcount(m, bits);
  Harness h(m);
  const std::uint64_t limit = n <= 12 ? (1ull << n) : 4096;
  for (std::uint64_t v = 0; v < limit; ++v) {
    h.set("b", v);
    h.run();
    EXPECT_EQ(h.unsigned_of(cnt),
              static_cast<std::uint64_t>(__builtin_popcountll(v)));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PopcountSize, ::testing::Values(1, 2, 3, 5, 9, 12));

}  // namespace
}  // namespace pml::synth
