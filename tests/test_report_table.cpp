// Table rendering and number formatting.

#include <gtest/gtest.h>

#include <sstream>

#include "pml/report/table.hpp"

namespace pml::report {
namespace {

TEST(Table, RendersAlignedAscii) {
  Table t({"Name", "Value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| Name  | Value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 22222 |"), std::string::npos);
  // Borders around header and at the end: at least 3 separator lines.
  std::size_t count = 0, pos = 0;
  while ((pos = out.find("+-", pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_GE(count, 3u);
}

TEST(Table, SeparatorsBetweenSections) {
  Table t({"A"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  std::ostringstream os;
  t.print(os);
  // header line + top + after-header + middle separator + bottom = 4 "+--".
  std::size_t count = 0, pos = 0;
  const std::string out = os.str();
  while ((pos = out.find("+---", pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_EQ(count, 4u);
}

TEST(Table, MarkdownOutput) {
  Table t({"Model", "Energy"});
  t.add_row({"Ours", "1.373"});
  const std::string md = t.to_markdown();
  EXPECT_NE(md.find("| Model | Energy |"), std::string::npos);
  EXPECT_NE(md.find("|---|---|"), std::string::npos);
  EXPECT_NE(md.find("| Ours | 1.373 |"), std::string::npos);
}

TEST(Table, RejectsColumnMismatch) {
  Table t({"A", "B"});
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
}

TEST(Formatting, Helpers) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.0, 0), "3");
  EXPECT_EQ(fmt_ratio(6.49, 1), "6.5x");
  EXPECT_EQ(fmt_pct(0.934, 1), "93.4");
  EXPECT_EQ(fmt_pct(1.0, 0), "100");
}

}  // namespace
}  // namespace pml::report
