// End-to-end flow integration: train -> quantize -> circuit -> verify ->
// measure, on a reduced dataset for speed.

#include <gtest/gtest.h>

#include "pml/arch/sequential_svm.hpp"
#include "pml/core/flow.hpp"
#include "pml/ml/scaler.hpp"
#include "pml/ml/synthetic_datasets.hpp"

namespace pml::core {
namespace {

struct Data {
  ml::Dataset train;
  ml::Dataset test;
};

Data cardio_subset() {
  // A 600-sample slice keeps the integration test fast.
  ml::Dataset d = ml::make_uci_like(ml::UciProfile::kCardio);
  d.X.resize(600);
  d.y.resize(600);
  ml::Split s = ml::stratified_split(d, 0.8, 7);
  ml::MinMaxScaler scaler;
  scaler.fit(s.train);
  return {scaler.transform(s.train), scaler.transform(s.test)};
}

TEST(Flow, EndToEndProducesVerifiedDesign) {
  const Data data = cardio_subset();
  const auto lib = cells::CellLibrary::egfet();
  SequentialSvmFlowOptions opts;
  opts.c_grid = {0.25, 1.0, 4.0};
  opts.evaluate.power_samples = 16;
  const SequentialSvmDesign design =
      design_sequential_svm(data.train, data.test, lib, opts);

  EXPECT_TRUE(design.hw.verified);
  EXPECT_EQ(design.hw.verified_samples, data.test.size());
  EXPECT_EQ(design.hw.model, "Ours");
  EXPECT_GT(design.float_test_accuracy, 0.8);
  EXPECT_GT(design.quantized_test_accuracy, 0.8);
  EXPECT_EQ(design.circuit.cycles_per_inference, 3);
  EXPECT_GE(design.precision.input_bits, opts.precision.min_input_bits);
  EXPECT_LE(design.precision.weight_bits, opts.precision.max_weight_bits);
  EXPECT_EQ(design.quantized.input_format.total_bits,
            design.precision.input_bits);
  // The quantized model must not fall far below the float model.
  EXPECT_GT(design.quantized_test_accuracy,
            design.float_test_accuracy - 0.06);
  EXPECT_GT(design.hw.energy_mj, 0.0);
  EXPECT_GT(design.hw.frequency_hz, 1.0);
  EXPECT_LT(design.hw.frequency_hz, 200.0) << "printed circuits run in Hz";
}

TEST(Flow, WorkloadExpectationsComeFromIntegerModel) {
  const Data data = cardio_subset();
  const auto lib = cells::CellLibrary::egfet();
  SequentialSvmFlowOptions opts;
  opts.c_grid = {1.0};
  opts.bias_calibration_rounds = 0;
  opts.evaluate.power_samples = 8;
  const SequentialSvmDesign design =
      design_sequential_svm(data.train, data.test, lib, opts);
  const CircuitWorkload wl = make_svm_workload(design.quantized, data.test);
  ASSERT_EQ(wl.feature_codes.size(), data.test.size());
  for (std::size_t i = 0; i < wl.feature_codes.size(); ++i) {
    EXPECT_EQ(wl.expected_class[i],
              design.quantized.predict_codes(wl.feature_codes[i]));
    for (const auto code : wl.feature_codes[i]) {
      EXPECT_GE(code, 0);
      EXPECT_LE(code, design.quantized.input_format.max_code());
    }
  }
}

// --- flow-recipe selection plumbing ------------------------------------------

/// A small quantized SVM shared by the flow-selection tests (training is
/// the slow part; the plumbing under test starts at the circuit).
quant::QuantizedSvm plumbing_model() {
  quant::QuantizedSvm q;
  q.strategy = ml::MulticlassStrategy::kOneVsRest;
  q.num_classes = 3;
  q.input_format = quant::input_format(3);
  q.weight_format =
      fixed::FixedFormat{.total_bits = 4, .frac_bits = 3, .is_signed = true};
  q.classifiers = {quant::QuantizedClassifier{{3, -2, 1}, 1},
                   quant::QuantizedClassifier{{-1, 4, 2}, 0},
                   quant::QuantizedClassifier{{2, 2, -3}, -2}};
  return q;
}

CircuitWorkload plumbing_workload(const quant::QuantizedSvm& q) {
  CircuitWorkload wl;
  for (std::int64_t a = 0; a <= 7; ++a) {
    for (std::int64_t b = 0; b <= 7; ++b) {
      wl.feature_codes.push_back({a, b, (a + b) & 7});
      wl.expected_class.push_back(q.predict_codes(wl.feature_codes.back()));
    }
  }
  return wl;
}

TEST(FlowSelection, EvaluateThreadsTheRecipeIntoTheReport) {
  const auto lib = cells::CellLibrary::egfet();
  const auto q = plumbing_model();
  const auto raw =
      arch::build_sequential_svm(q, opt::OptOptions{.enabled = false});
  const CircuitWorkload wl = plumbing_workload(q);
  EvaluateOptions opts;
  opts.power_samples = 16;

  auto eval_flow = [&](const std::string& flow) {
    EvaluateOptions o = opts;
    o.optimize.flow = flow;
    return evaluate_circuit(raw.module, raw.cycles_per_inference, lib, wl, o);
  };
  const HardwareReport area = eval_flow("area");
  const HardwareReport energy = eval_flow("energy");
  const HardwareReport none = eval_flow("none");
  EXPECT_EQ(area.opt_flow, "area");
  EXPECT_EQ(energy.opt_flow, "energy");
  EXPECT_EQ(none.opt_flow, "none");
  // "none" runs no passes; "energy" (CSE+DCE) removes no more than the
  // full "area" pipeline.
  EXPECT_EQ(none.num_cells, raw.module.stats().num_cells);
  EXPECT_LE(area.num_cells, energy.num_cells);
  EXPECT_LE(energy.num_cells, none.num_cells);
  // All flows report the same pre-opt shape and a verified design.
  EXPECT_EQ(area.pre_opt_stats.num_cells, raw.module.stats().num_cells);
  EXPECT_TRUE(area.verified && energy.verified && none.verified);

  // Disabled optimizer reports "none" too.
  EvaluateOptions off = opts;
  off.optimize.enabled = false;
  const HardwareReport raw_rep = evaluate_circuit(
      raw.module, raw.cycles_per_inference, lib, wl, off);
  EXPECT_EQ(raw_rep.opt_flow, "none");

  // Unknown recipe names surface as std::invalid_argument.
  EvaluateOptions bad = opts;
  bad.optimize.flow = "no-such-flow";
  EXPECT_THROW((void)evaluate_circuit(raw.module, raw.cycles_per_inference,
                                      lib, wl, bad),
               std::invalid_argument);
}

TEST(FlowSelection, GlitchSplitLandsInTheReport) {
  const auto lib = cells::CellLibrary::egfet();
  const auto q = plumbing_model();
  const auto circuit = arch::build_sequential_svm(q);
  const CircuitWorkload wl = plumbing_workload(q);
  EvaluateOptions opts;
  opts.power_samples = 16;
  const HardwareReport rep = evaluate_circuit(
      circuit.module, circuit.cycles_per_inference, lib, wl, opts);
  EXPECT_GT(rep.functional_transitions, 0u);
  EXPECT_GT(rep.glitch_transitions, 0u);  // delay-skewed datapaths glitch
  EXPECT_GE(rep.dynamic_mw, rep.dynamic_glitch_mw);
  EXPECT_GT(rep.dynamic_glitch_mw, 0.0);
}

TEST(FlowSelection, SweepFlowsCoversAndVerifiesEveryRecipe) {
  const auto lib = cells::CellLibrary::egfet();
  const auto q = plumbing_model();
  const auto raw =
      arch::build_sequential_svm(q, opt::OptOptions{.enabled = false});
  const CircuitWorkload wl = plumbing_workload(q);
  EvaluateOptions opts;
  opts.power_samples = 16;
  const auto rows = sweep_flows(raw.module, raw.cycles_per_inference, lib,
                                wl, opts);
  ASSERT_EQ(rows.size(), 4u);  // none, area, energy, balanced
  for (const auto& row : rows) {
    EXPECT_EQ(row.hw.opt_flow, row.flow);
    EXPECT_TRUE(row.hw.verified) << row.flow;
    EXPECT_GT(row.hw.energy_mj, 0.0) << row.flow;
  }
}

TEST(FlowSelection, DesignFlowHonorsTheFlowOption) {
  const Data data = cardio_subset();
  const auto lib = cells::CellLibrary::egfet();
  SequentialSvmFlowOptions opts;
  opts.c_grid = {1.0};
  opts.bias_calibration_rounds = 0;
  opts.evaluate.power_samples = 8;
  opts.flow = "energy";
  const SequentialSvmDesign design =
      design_sequential_svm(data.train, data.test, lib, opts);
  EXPECT_EQ(design.hw.opt_flow, "energy");
  EXPECT_EQ(design.circuit.opt.recipe, "energy");
  EXPECT_TRUE(design.hw.verified);
}

TEST(Flow, DeterministicForFixedSeeds) {
  const Data data = cardio_subset();
  const auto lib = cells::CellLibrary::egfet();
  SequentialSvmFlowOptions opts;
  opts.c_grid = {1.0, 4.0};
  opts.evaluate.power_samples = 8;
  const auto a = design_sequential_svm(data.train, data.test, lib, opts);
  const auto b = design_sequential_svm(data.train, data.test, lib, opts);
  EXPECT_EQ(a.precision.input_bits, b.precision.input_bits);
  EXPECT_EQ(a.precision.weight_bits, b.precision.weight_bits);
  EXPECT_DOUBLE_EQ(a.quantized_test_accuracy, b.quantized_test_accuracy);
  EXPECT_DOUBLE_EQ(a.hw.energy_mj, b.hw.energy_mj);
}

}  // namespace
}  // namespace pml::core
