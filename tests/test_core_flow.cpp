// End-to-end flow integration: train -> quantize -> circuit -> verify ->
// measure, on a reduced dataset for speed.

#include <gtest/gtest.h>

#include "pml/core/flow.hpp"
#include "pml/ml/scaler.hpp"
#include "pml/ml/synthetic_datasets.hpp"

namespace pml::core {
namespace {

struct Data {
  ml::Dataset train;
  ml::Dataset test;
};

Data cardio_subset() {
  // A 600-sample slice keeps the integration test fast.
  ml::Dataset d = ml::make_uci_like(ml::UciProfile::kCardio);
  d.X.resize(600);
  d.y.resize(600);
  ml::Split s = ml::stratified_split(d, 0.8, 7);
  ml::MinMaxScaler scaler;
  scaler.fit(s.train);
  return {scaler.transform(s.train), scaler.transform(s.test)};
}

TEST(Flow, EndToEndProducesVerifiedDesign) {
  const Data data = cardio_subset();
  const auto lib = cells::CellLibrary::egfet();
  SequentialSvmFlowOptions opts;
  opts.c_grid = {0.25, 1.0, 4.0};
  opts.evaluate.power_samples = 16;
  const SequentialSvmDesign design =
      design_sequential_svm(data.train, data.test, lib, opts);

  EXPECT_TRUE(design.hw.verified);
  EXPECT_EQ(design.hw.verified_samples, data.test.size());
  EXPECT_EQ(design.hw.model, "Ours");
  EXPECT_GT(design.float_test_accuracy, 0.8);
  EXPECT_GT(design.quantized_test_accuracy, 0.8);
  EXPECT_EQ(design.circuit.cycles_per_inference, 3);
  EXPECT_GE(design.precision.input_bits, opts.precision.min_input_bits);
  EXPECT_LE(design.precision.weight_bits, opts.precision.max_weight_bits);
  EXPECT_EQ(design.quantized.input_format.total_bits,
            design.precision.input_bits);
  // The quantized model must not fall far below the float model.
  EXPECT_GT(design.quantized_test_accuracy,
            design.float_test_accuracy - 0.06);
  EXPECT_GT(design.hw.energy_mj, 0.0);
  EXPECT_GT(design.hw.frequency_hz, 1.0);
  EXPECT_LT(design.hw.frequency_hz, 200.0) << "printed circuits run in Hz";
}

TEST(Flow, WorkloadExpectationsComeFromIntegerModel) {
  const Data data = cardio_subset();
  const auto lib = cells::CellLibrary::egfet();
  SequentialSvmFlowOptions opts;
  opts.c_grid = {1.0};
  opts.bias_calibration_rounds = 0;
  opts.evaluate.power_samples = 8;
  const SequentialSvmDesign design =
      design_sequential_svm(data.train, data.test, lib, opts);
  const CircuitWorkload wl = make_svm_workload(design.quantized, data.test);
  ASSERT_EQ(wl.feature_codes.size(), data.test.size());
  for (std::size_t i = 0; i < wl.feature_codes.size(); ++i) {
    EXPECT_EQ(wl.expected_class[i],
              design.quantized.predict_codes(wl.feature_codes[i]));
    for (const auto code : wl.feature_codes[i]) {
      EXPECT_GE(code, 0);
      EXPECT_LE(code, design.quantized.input_format.max_code());
    }
  }
}

TEST(Flow, DeterministicForFixedSeeds) {
  const Data data = cardio_subset();
  const auto lib = cells::CellLibrary::egfet();
  SequentialSvmFlowOptions opts;
  opts.c_grid = {1.0, 4.0};
  opts.evaluate.power_samples = 8;
  const auto a = design_sequential_svm(data.train, data.test, lib, opts);
  const auto b = design_sequential_svm(data.train, data.test, lib, opts);
  EXPECT_EQ(a.precision.input_bits, b.precision.input_bits);
  EXPECT_EQ(a.precision.weight_bits, b.precision.weight_bits);
  EXPECT_DOUBLE_EQ(a.quantized_test_accuracy, b.quantized_test_accuracy);
  EXPECT_DOUBLE_EQ(a.hw.energy_mj, b.hw.energy_mj);
}

}  // namespace
}  // namespace pml::core
