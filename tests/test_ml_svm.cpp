// Linear SVM training: separability, margins, multiclass wrappers,
// class weighting, tuning, bias calibration.

#include <gtest/gtest.h>

#include "pml/ml/linear_svm.hpp"
#include "pml/ml/metrics.hpp"
#include "pml/ml/multiclass.hpp"
#include "pml/ml/rng.hpp"
#include "pml/ml/synthetic_datasets.hpp"

namespace pml::ml {
namespace {

/// Two linearly separable 2-D blobs.
Dataset separable_blobs(std::size_t n, double gap, std::uint64_t seed) {
  Rng rng(seed);
  Dataset d;
  d.name = "sep";
  d.num_features = 2;
  d.num_classes = 2;
  for (std::size_t i = 0; i < n; ++i) {
    const int label = static_cast<int>(i % 2);
    const double cx = label == 0 ? 0.3 : 0.3 + gap;
    d.X.push_back({rng.normal(cx, 0.05), rng.normal(0.5, 0.05)});
    d.y.push_back(label);
  }
  return d;
}

TEST(BinarySvm, SeparatesCleanBlobs) {
  const Dataset d = separable_blobs(200, 0.5, 3);
  std::vector<int> y;
  for (const int label : d.y) y.push_back(label == 0 ? -1 : +1);
  const BinarySvm model = train_binary_svm(d.X, y, SvmTrainOptions{});
  int correct = 0;
  for (std::size_t i = 0; i < d.size(); ++i) {
    const double f = model.decision(d.X[i]);
    if ((f > 0) == (y[i] > 0)) ++correct;
  }
  EXPECT_EQ(correct, 200);
}

TEST(BinarySvm, WeightsPointAcrossTheGap) {
  const Dataset d = separable_blobs(200, 0.5, 4);
  std::vector<int> y;
  for (const int label : d.y) y.push_back(label == 0 ? -1 : +1);
  const BinarySvm model = train_binary_svm(d.X, y, SvmTrainOptions{});
  // Class +1 sits at larger x0: w[0] must dominate and be positive.
  EXPECT_GT(model.w[0], 0.0);
  EXPECT_GT(std::abs(model.w[0]), std::abs(model.w[1]) * 3);
}

TEST(BinarySvm, RegularizationShrinksWeights) {
  const Dataset d = separable_blobs(100, 0.2, 5);
  std::vector<int> y;
  for (const int label : d.y) y.push_back(label == 0 ? -1 : +1);
  SvmTrainOptions strong;
  strong.C = 0.001;
  SvmTrainOptions weak;
  weak.C = 100.0;
  const auto m_strong = train_binary_svm(d.X, y, strong);
  const auto m_weak = train_binary_svm(d.X, y, weak);
  const auto norm = [](const BinarySvm& m) {
    double s = 0;
    for (const double w : m.w) s += w * w;
    return s;
  };
  EXPECT_LT(norm(m_strong), norm(m_weak));
}

TEST(BinarySvm, RejectsBadInputs) {
  EXPECT_THROW((void)train_binary_svm({}, {}, SvmTrainOptions{}),
               std::invalid_argument);
  EXPECT_THROW((void)train_binary_svm({{1.0}}, {1, -1}, SvmTrainOptions{}),
               std::invalid_argument);
  EXPECT_THROW(
      (void)train_binary_svm({{1.0}}, {1}, SvmTrainOptions{}, {1.0, 2.0}),
      std::invalid_argument);
  const BinarySvm m{{1.0, 2.0}, 0.0};
  EXPECT_THROW((void)m.decision({1.0}), std::invalid_argument);
}

TEST(OneVsRest, HighAccuracyOnBlobProfile) {
  const Dataset d = make_uci_like(UciProfile::kDermatology);
  const Split s = stratified_split(d, 0.8, 11);
  MulticlassTrainOptions opts;
  const MulticlassSvm model = train_one_vs_rest(s.train, opts);
  EXPECT_EQ(model.classifiers.size(), 6u);
  EXPECT_GT(accuracy(model.predict_all(s.test.X), s.test.y), 0.9);
}

TEST(OneVsOne, PairCountAndAccuracy) {
  const Dataset d = make_uci_like(UciProfile::kDermatology);
  const Split s = stratified_split(d, 0.8, 11);
  MulticlassTrainOptions opts;
  const MulticlassSvm model = train_one_vs_one(s.train, opts);
  EXPECT_EQ(model.classifiers.size(), 15u);  // 6*5/2
  EXPECT_EQ(model.pairs.size(), 15u);
  EXPECT_EQ(model.pairs[0], (std::pair<int, int>{0, 1}));
  EXPECT_GT(accuracy(model.predict_all(s.test.X), s.test.y), 0.9);
}

TEST(Multiclass, StoredCoefficientsCount) {
  const Dataset d = make_uci_like(UciProfile::kCardio);
  const Split s = stratified_split(d, 0.9, 11);
  MulticlassTrainOptions opts;
  const auto ovr = train_one_vs_rest(s.train, opts);
  const auto ovo = train_one_vs_one(s.train, opts);
  EXPECT_EQ(ovr.stored_coefficients(), 3u * 22u);   // n=3 classifiers
  EXPECT_EQ(ovo.stored_coefficients(), 3u * 22u);   // 3 pairs for n=3
  // OvR stores strictly fewer coefficients for n > 3.
  const Dataset pd = make_uci_like(UciProfile::kPenDigits);
  const Split ps = stratified_split(pd, 0.5, 11);
  const auto pd_ovr = train_one_vs_rest(ps.train, opts);
  const auto pd_ovo = train_one_vs_one(ps.train, opts);
  EXPECT_EQ(pd_ovr.stored_coefficients(), 10u * 17u);
  EXPECT_EQ(pd_ovo.stored_coefficients(), 45u * 17u);
}

TEST(Multiclass, PredictTieGoesToLowestIndex) {
  MulticlassSvm model;
  model.strategy = MulticlassStrategy::kOneVsRest;
  model.num_classes = 3;
  // All-zero classifiers: every decision is the bias.
  model.classifiers = {{{0.0}, 1.0}, {{0.0}, 1.0}, {{0.0}, 0.5}};
  EXPECT_EQ(model.predict({0.0}), 0);
}

TEST(Multiclass, OvoVoteSemantics) {
  MulticlassSvm model;
  model.strategy = MulticlassStrategy::kOneVsOne;
  model.num_classes = 3;
  model.pairs = {{0, 1}, {0, 2}, {1, 2}};
  // decisions: (0,1) -> +1 votes 0; (0,2) -> -1 votes 2; (1,2) -> +1 votes 1.
  // One vote each: tie resolves to class 0.
  model.classifiers = {{{0.0}, 1.0}, {{0.0}, -1.0}, {{0.0}, 1.0}};
  EXPECT_EQ(model.predict({0.0}), 0);
  // Zero decision votes the SECOND class of the pair.
  model.classifiers = {{{0.0}, 0.0}, {{0.0}, -1.0}, {{0.0}, -1.0}};
  // (0,1)->1, (0,2)->2, (1,2)->2: class 2 wins with 2 votes.
  EXPECT_EQ(model.predict({0.0}), 2);
}

TEST(ClassBalancing, HelpsMinorityRecall) {
  // 95/5 imbalance: balanced costs should recover minority predictions.
  Rng rng(17);
  Dataset d;
  d.num_features = 2;
  d.num_classes = 2;
  for (int i = 0; i < 400; ++i) {
    const bool minority = i % 20 == 0;
    d.X.push_back({rng.normal(minority ? 0.62 : 0.4, 0.08),
                   rng.normal(0.5, 0.08)});
    d.y.push_back(minority ? 1 : 0);
  }
  MulticlassTrainOptions plain;
  MulticlassTrainOptions balanced;
  balanced.class_balanced = true;
  const auto m_plain = train_one_vs_rest(d, plain);
  const auto m_bal = train_one_vs_rest(d, balanced);
  const auto cm_plain = confusion_matrix(m_plain.predict_all(d.X), d.y, 2);
  const auto cm_bal = confusion_matrix(m_bal.predict_all(d.X), d.y, 2);
  EXPECT_GE(cm_bal[1][1], cm_plain[1][1])
      << "balanced training should not reduce minority true positives";
}

TEST(TrainTuned, PicksWorkingConfiguration) {
  const Dataset d = make_uci_like(UciProfile::kCardio);
  const Split s = stratified_split(d, 0.8, 21);
  const MulticlassSvm model =
      train_tuned(s.train, MulticlassStrategy::kOneVsRest, {0.1, 1.0, 8.0},
                  /*search_balanced=*/true, 0.25, 7);
  EXPECT_GT(accuracy(model.predict_all(s.test.X), s.test.y), 0.85);
  EXPECT_THROW((void)train_tuned(s.train, MulticlassStrategy::kOneVsRest, {},
                                 true, 0.25, 7),
               std::invalid_argument);
}

TEST(BiasCalibration, NeverHurtsValidationAccuracy) {
  const Dataset d = make_uci_like(UciProfile::kRedWine);
  const Split s = stratified_split(d, 0.8, 31);
  MulticlassTrainOptions opts;
  MulticlassSvm model = train_one_vs_rest(s.train, opts);
  const Split val = stratified_split(s.train, 0.75, 32);
  const double before = accuracy(model.predict_all(val.test.X), val.test.y);
  calibrate_ovr_biases(model, val.test);
  const double after = accuracy(model.predict_all(val.test.X), val.test.y);
  EXPECT_GE(after + 1e-12, before) << "coordinate ascent cannot regress";
}

TEST(BiasCalibration, RejectsOvo) {
  MulticlassSvm model;
  model.strategy = MulticlassStrategy::kOneVsOne;
  Dataset d;
  EXPECT_THROW(calibrate_ovr_biases(model, d), std::invalid_argument);
}

TEST(Metrics, AccuracyAndConfusion) {
  EXPECT_DOUBLE_EQ(accuracy({1, 0, 1}, {1, 1, 1}), 2.0 / 3.0);
  EXPECT_THROW((void)accuracy({}, {}), std::invalid_argument);
  EXPECT_THROW((void)accuracy({1}, {1, 2}), std::invalid_argument);
  const auto cm = confusion_matrix({0, 1, 1, 0}, {0, 1, 0, 0}, 2);
  EXPECT_EQ(cm[0][0], 2);
  EXPECT_EQ(cm[0][1], 1);
  EXPECT_EQ(cm[1][1], 1);
  EXPECT_EQ(cm[1][0], 0);
  const double f1 = macro_f1({0, 1, 1, 0}, {0, 1, 0, 0}, 2);
  EXPECT_GT(f1, 0.0);
  EXPECT_LE(f1, 1.0);
}

}  // namespace
}  // namespace pml::ml
