// BatchFaultSimulator: randomized lane-by-lane bit-identity against the
// scalar CycleSimulator + force_net oracle on generated sequential-SVM and
// parallel-SVM circuits and on random netlists; the reserved fault-free
// lane-0 invariant; and the core::run_fault_campaign driver — ragged
// (<63 variant) batches, exact agreement with a per-variant scalar replay,
// thread-count invariance, the accuracy-vs-fault-count curve helper, and
// the deterministic fault-set generators.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "pml/arch/parallel_svm.hpp"
#include "pml/arch/sequential_svm.hpp"
#include "pml/core/fault_campaign.hpp"
#include "pml/sim/batch_fault_sim.hpp"
#include "pml/sim/cycle_sim.hpp"

namespace pml::sim {
namespace {

using netlist::CellType;
using netlist::Module;
using netlist::NetId;
using quant::QuantizedClassifier;
using quant::QuantizedSvm;

constexpr std::size_t kLanes = BatchFaultSimulator::kLanes;

// --- deterministic generators (same style as test_sim_batch.cpp) ------------

std::uint64_t xorshift(std::uint64_t& s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}

QuantizedSvm random_svm(int classes, int features, int input_bits,
                        int weight_bits, std::uint64_t seed) {
  QuantizedSvm q;
  q.strategy = ml::MulticlassStrategy::kOneVsRest;
  q.num_classes = classes;
  q.input_format = quant::input_format(input_bits);
  q.weight_format = fixed::FixedFormat{.total_bits = weight_bits,
                                       .frac_bits = weight_bits - 1,
                                       .is_signed = true};
  std::uint64_t s = seed * 0x9E3779B97F4A7C15ull + 1;
  const std::int64_t wmin = q.weight_format.min_code();
  const std::int64_t wmax = q.weight_format.max_code();
  for (int k = 0; k < classes; ++k) {
    QuantizedClassifier c;
    for (int j = 0; j < features; ++j) {
      c.w.push_back(wmin + static_cast<std::int64_t>(
                               xorshift(s) % static_cast<std::uint64_t>(
                                                 wmax - wmin + 1)));
    }
    c.b = -8 + static_cast<std::int64_t>(xorshift(s) % 17);
    q.classifiers.push_back(std::move(c));
  }
  return q;
}

/// Random combinational + sequential netlist over `inputs`-bit port "x"
/// (same construction as test_sim_event.cpp).
Module random_module(std::uint64_t seed, int inputs, int gates, int dffs) {
  Module m("rand");
  std::uint64_t s = seed * 2654435761u + 1;
  auto below = [&s](std::uint32_t n) {
    return static_cast<std::uint32_t>(xorshift(s) % n);
  };
  std::vector<NetId> pool = m.add_input_port("x", inputs);
  static constexpr CellType kComb[] = {
      CellType::kInv,   CellType::kBuf,  CellType::kNand2, CellType::kNor2,
      CellType::kAnd2,  CellType::kOr2,  CellType::kXor2,  CellType::kXnor2,
      CellType::kMux2};
  for (int i = 0; i < gates; ++i) {
    const CellType t = kComb[below(9)];
    const NetId a = pool[below(static_cast<std::uint32_t>(pool.size()))];
    const NetId b = pool[below(static_cast<std::uint32_t>(pool.size()))];
    const NetId sel = pool[below(static_cast<std::uint32_t>(pool.size()))];
    const int arity = netlist::cell_num_inputs(t);
    pool.push_back(arity == 1   ? m.add_gate_raw(t, a)
                   : arity == 2 ? m.add_gate_raw(t, a, b)
                                : m.add_gate_raw(t, a, b, sel));
  }
  for (int i = 0; i < dffs; ++i) {
    const NetId d = pool[below(static_cast<std::uint32_t>(pool.size()))];
    pool.push_back(m.dff(d, (xorshift(s) & 1) != 0));
  }
  std::vector<NetId> outs(pool.end() - std::min<std::size_t>(8, pool.size()),
                          pool.end());
  m.add_output_port("y", outs);
  return m;
}

/// 0-3 random stuck-at faults on cell outputs for each of lanes [1, lanes).
std::vector<std::vector<std::pair<NetId, bool>>> random_lane_faults(
    const Module& m, std::size_t lanes, std::uint64_t seed) {
  std::uint64_t s = seed ^ 0xFA0175ull;
  std::vector<std::vector<std::pair<NetId, bool>>> faults(lanes);
  for (std::size_t lane = 1; lane < lanes; ++lane) {
    const std::size_t count = xorshift(s) % 4;  // 0 faults is a valid variant
    for (std::size_t f = 0; f < count; ++f) {
      const auto idx =
          static_cast<std::size_t>(xorshift(s) % m.cells().size());
      faults[lane].emplace_back(m.cells()[idx].out, (xorshift(s) & 1) != 0);
    }
  }
  return faults;
}

/// Drive the batch simulator and, per lane, a scalar CycleSimulator with
/// the same faults installed via force_net, through the same free-running
/// sample stream (`samples[i][j]` = value of input port j at sample i),
/// and require every output port to agree on every sample in every lane.
/// Lane 0 of `lane_faults` must be empty (it is the reserved reference).
/// `cycles` == 0 settles once per sample (combinational).
void expect_fault_lanewise_equal(
    const Module& m, int cycles, const std::vector<std::string>& in_ports,
    const std::vector<std::vector<std::uint64_t>>& samples,
    const std::vector<std::vector<std::pair<NetId, bool>>>& lane_faults) {
  const auto lv = levelize_shared(m);
  BatchFaultSimulator batch(m, lv);
  std::vector<CycleSimulator> scalars;
  scalars.reserve(lane_faults.size());
  for (std::size_t lane = 0; lane < lane_faults.size(); ++lane) {
    scalars.emplace_back(m, lv);
    for (const auto& [net, value] : lane_faults[lane]) {
      if (lane == 0) FAIL() << "lane 0 must stay fault-free";
      batch.set_fault(net, lane, value);
      scalars.back().force_net(net, value);
    }
    scalars.back().reset();
  }
  batch.reset();
  for (std::size_t i = 0; i < samples.size(); ++i) {
    for (std::size_t j = 0; j < in_ports.size(); ++j) {
      batch.set_port(in_ports[j], samples[i][j]);
      for (auto& scalar : scalars) scalar.set_port(in_ports[j], samples[i][j]);
    }
    if (cycles == 0) {
      batch.propagate();
      for (auto& scalar : scalars) scalar.propagate();
    } else {
      for (int c = 0; c < cycles; ++c) {
        batch.step();
        for (auto& scalar : scalars) scalar.step();
      }
    }
    for (std::size_t lane = 0; lane < scalars.size(); ++lane) {
      for (const netlist::Port& out : m.output_ports()) {
        EXPECT_EQ(batch.port_unsigned(out, lane),
                  scalars[lane].port_unsigned(out))
            << "port '" << out.name << "' diverges on sample " << i
            << " in lane " << lane;
      }
    }
  }
}

std::vector<std::vector<std::uint64_t>> svm_samples(std::size_t count,
                                                    int features,
                                                    std::int64_t max_code,
                                                    std::uint64_t seed) {
  std::uint64_t s = seed | 1;
  std::vector<std::vector<std::uint64_t>> samples(count);
  for (auto& row : samples) {
    for (int j = 0; j < features; ++j) {
      row.push_back(xorshift(s) % static_cast<std::uint64_t>(max_code + 1));
    }
  }
  return samples;
}

std::vector<std::string> feature_port_names(int features) {
  std::vector<std::string> names;
  for (int j = 0; j < features; ++j) names.push_back("x" + std::to_string(j));
  return names;
}

// --- lane-by-lane equivalence vs the force_net oracle -----------------------

TEST(BatchFaultSim, SequentialSvmMatchesScalarOracleLaneByLane) {
  for (const std::uint64_t seed : {1ull, 2ull}) {
    const QuantizedSvm q =
        random_svm(3 + static_cast<int>(seed % 3), 4, 3, 4, seed);
    const auto circuit = arch::build_sequential_svm(q);
    expect_fault_lanewise_equal(
        circuit.module, circuit.cycles_per_inference, feature_port_names(4),
        svm_samples(8, 4, q.input_format.max_code(), seed * 77),
        random_lane_faults(circuit.module, kLanes, seed * 131));
  }
}

TEST(BatchFaultSim, ParallelSvmMatchesScalarOracleLaneByLane) {
  const QuantizedSvm q = random_svm(4, 3, 3, 4, 11);
  const auto circuit = arch::build_parallel_svm(q);
  expect_fault_lanewise_equal(
      circuit.module, /*cycles=*/0, feature_port_names(3),
      svm_samples(8, 3, q.input_format.max_code(), 99),
      random_lane_faults(circuit.module, kLanes, 17));
}

TEST(BatchFaultSim, RandomNetlistsMatchScalarOracleLaneByLane) {
  for (const std::uint64_t seed : {5ull, 6ull, 7ull}) {
    // Mix of combinational-only and sequential random designs.
    const int dffs = seed % 2 == 0 ? 0 : 6;
    const Module m = random_module(seed, 6, 120, dffs);
    std::uint64_t s = seed * 31;
    std::vector<std::vector<std::uint64_t>> samples(10);
    for (auto& row : samples) row.push_back(xorshift(s) % 64);
    expect_fault_lanewise_equal(m, dffs == 0 ? 0 : 2, {"x"}, samples,
                                random_lane_faults(m, kLanes, seed * 997));
  }
}

TEST(BatchFaultSim, FaultsOnPrimaryInputsMatchScalarOracle) {
  const QuantizedSvm q = random_svm(3, 3, 3, 4, 23);
  const auto circuit = arch::build_sequential_svm(q);
  const netlist::Port* x0 = circuit.module.find_input("x0");
  ASSERT_NE(x0, nullptr);
  // Stick individual input bits high/low in different lanes.
  std::vector<std::vector<std::pair<NetId, bool>>> faults(4);
  faults[1] = {{x0->nets[0], true}};
  faults[2] = {{x0->nets[1], false}};
  faults[3] = {{x0->nets[0], false}, {x0->nets[2], true}};
  expect_fault_lanewise_equal(
      circuit.module, circuit.cycles_per_inference, feature_port_names(3),
      svm_samples(8, 3, q.input_format.max_code(), 5), faults);
}

// --- the reserved fault-free lane 0 ------------------------------------------

TEST(BatchFaultSim, LaneZeroStaysGoldenUnderHeavyFaults) {
  const QuantizedSvm q = random_svm(4, 4, 3, 4, 3);
  const auto circuit = arch::build_sequential_svm(q);
  const auto lv = levelize_shared(circuit.module);
  BatchFaultSimulator batch(circuit.module, lv);
  CycleSimulator golden(circuit.module, lv);
  // Saturate every other lane with faults; lane 0 must not notice.
  std::uint64_t s = 41;
  for (std::size_t lane = 1; lane < kLanes; ++lane) {
    for (int f = 0; f < 4; ++f) {
      const auto idx = static_cast<std::size_t>(
          xorshift(s) % circuit.module.cells().size());
      batch.set_fault(circuit.module.cells()[idx].out, lane,
                      (xorshift(s) & 1) != 0);
    }
  }
  batch.reset();
  const auto xs = svm_samples(6, 4, q.input_format.max_code(), 13);
  for (const auto& x : xs) {
    for (std::size_t j = 0; j < x.size(); ++j) {
      batch.set_port("x" + std::to_string(j), x[j]);
      golden.set_port("x" + std::to_string(j), x[j]);
    }
    for (int c = 0; c < circuit.cycles_per_inference; ++c) {
      batch.step();
      golden.step();
    }
    EXPECT_EQ(batch.port_unsigned("class", 0), golden.port_unsigned("class"));
  }
}

TEST(BatchFaultSim, RejectsLaneZeroFaults) {
  const Module m = random_module(1, 4, 20, 0);
  BatchFaultSimulator sim(m);
  EXPECT_THROW(sim.set_fault(m.cells()[0].out, 0, true),
               std::invalid_argument);
}

// --- API edges ---------------------------------------------------------------

TEST(BatchFaultSim, FaultBookkeepingAndBounds) {
  const Module m = random_module(2, 4, 20, 2);
  BatchFaultSimulator sim(m);
  const NetId out = m.cells()[0].out;
  EXPECT_EQ(sim.num_faults(), 0u);
  sim.set_fault(out, 1, true);
  EXPECT_EQ(sim.num_faults(), 1u);
  EXPECT_EQ(sim.fault1_mask(out), 0b10u);
  // Re-sticking the same (net, lane) overwrites instead of accumulating.
  sim.set_fault(out, 1, false);
  EXPECT_EQ(sim.num_faults(), 1u);
  EXPECT_EQ(sim.fault0_mask(out), 0b10u);
  EXPECT_EQ(sim.fault1_mask(out), 0u);
  sim.set_fault(out, 5, true);
  EXPECT_EQ(sim.num_faults(), 2u);
  sim.clear_faults();
  EXPECT_EQ(sim.num_faults(), 0u);
  EXPECT_EQ(sim.fault0_mask(out), 0u);

  EXPECT_THROW(sim.set_fault(out, kLanes, true), std::out_of_range);
  EXPECT_THROW(sim.set_fault(netlist::kConst0, 1, true),
               std::invalid_argument);
  EXPECT_THROW(sim.set_fault(netlist::kConst1, 1, false),
               std::invalid_argument);
  EXPECT_THROW(sim.set_fault(static_cast<NetId>(m.num_nets()), 1, true),
               std::out_of_range);
  EXPECT_THROW(BatchFaultSimulator(m, nullptr), std::invalid_argument);
}

TEST(BatchFaultSim, ClearFaultsTakesEffectWithoutReset) {
  // A cleared fault must be recomputed away on the very next propagate,
  // even though nothing else changed (the fixpoint-skip must not keep the
  // stale forced value alive).
  Module m;
  const NetId a = m.add_input_port("x", 1)[0];
  const NetId y = m.add_gate_raw(CellType::kBuf, a);
  m.add_output_port("y", {y});
  BatchFaultSimulator sim(m);
  sim.set_net(a, true);
  sim.set_fault(y, 1, false);
  sim.propagate();
  EXPECT_EQ(sim.port_unsigned("y", 0), 1u);
  EXPECT_EQ(sim.port_unsigned("y", 1), 0u);
  sim.clear_faults();
  sim.propagate();
  EXPECT_EQ(sim.port_unsigned("y", 1), 1u);
}

}  // namespace
}  // namespace pml::sim

// --- run_fault_campaign ------------------------------------------------------

namespace pml::core {
namespace {

using quant::QuantizedSvm;

QuantizedSvm small_model() {
  QuantizedSvm q;
  q.strategy = ml::MulticlassStrategy::kOneVsRest;
  q.num_classes = 3;
  q.input_format = quant::input_format(3);
  q.weight_format =
      fixed::FixedFormat{.total_bits = 4, .frac_bits = 3, .is_signed = true};
  q.classifiers = {quant::QuantizedClassifier{{3, -2}, 1},
                   quant::QuantizedClassifier{{-1, 4}, 0},
                   quant::QuantizedClassifier{{2, 2}, -3}};
  return q;
}

CircuitWorkload exhaustive_workload(const QuantizedSvm& q) {
  CircuitWorkload wl;
  for (std::int64_t a = 0; a <= 7; ++a) {
    for (std::int64_t b = 0; b <= 7; ++b) {
      wl.feature_codes.push_back({a, b});
      wl.expected_class.push_back(q.predict_codes({a, b}));
    }
  }
  return wl;
}

/// Scalar oracle: the campaign protocol, one variant at a time (install
/// faults, reset, free-running replay).
std::vector<std::size_t> scalar_campaign(const netlist::Module& module,
                                         int cycles, bool sequential,
                                         const CircuitWorkload& wl,
                                         std::size_t n,
                                         const std::vector<FaultSet>& sets) {
  const auto lv = sim::levelize_shared(module);
  sim::CycleSimulator sim(module, lv);
  const auto ports = feature_ports(module, wl.feature_codes[0].size());
  const netlist::Port* class_port = module.find_output("class");
  std::vector<std::size_t> counts;
  for (const FaultSet& set : sets) {
    sim.clear_forces();
    for (const StuckAtFault& f : set.faults) sim.force_net(f.net, f.stuck_value);
    sim.reset();
    std::size_t mis = 0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < ports.size(); ++j) {
        sim.set_port(*ports[j],
                     static_cast<std::uint64_t>(wl.feature_codes[i][j]));
      }
      if (sequential) {
        for (int c = 0; c < cycles; ++c) sim.step();
      } else {
        sim.propagate();
      }
      mis += static_cast<int>(sim.port_unsigned(*class_port)) !=
             wl.expected_class[i];
    }
    counts.push_back(mis);
  }
  return counts;
}

TEST(FaultCampaign, MatchesScalarOracleExactlyRaggedAndMultiBatch) {
  const auto q = small_model();
  auto circuit = arch::build_sequential_svm(q);
  const auto wl = exhaustive_workload(q);
  // 100 sets = one full 63-variant batch plus a ragged 37-variant batch:
  // 80 random multi-fault sets on top of 20 enumerated single faults.
  auto sets = sample_fault_sets(circuit.module, 3, 80, 2024);
  const auto singles = enumerate_single_faults(circuit.module);
  sets.insert(sets.end(), singles.begin(), singles.begin() + 20);
  FaultCampaignOptions opts;
  opts.max_samples = 32;
  const auto result = run_fault_campaign(
      circuit.module, circuit.cycles_per_inference, wl, sets, opts);
  const auto oracle =
      scalar_campaign(circuit.module, circuit.cycles_per_inference,
                      /*sequential=*/true, wl, 32, sets);
  ASSERT_EQ(result.variants.size(), sets.size());
  for (std::size_t i = 0; i < sets.size(); ++i) {
    EXPECT_EQ(result.variants[i].misclassified, oracle[i])
        << "variant " << i << " diverges from the scalar oracle";
    EXPECT_EQ(result.variants[i].samples, 32u);
  }
  // The workload's expected classes ARE the model's predictions, so the
  // fault-free golden lane must classify everything correctly.
  EXPECT_EQ(result.golden.misclassified, 0u);
  EXPECT_EQ(result.golden.samples, 32u);
}

TEST(FaultCampaign, CombinationalParallelSvmMatchesOracle) {
  const auto q = small_model();
  auto circuit = arch::build_parallel_svm(q);
  const auto wl = exhaustive_workload(q);
  const auto sets = sample_fault_sets(circuit.module, 2, 40, 77);
  FaultCampaignOptions opts;
  opts.max_samples = 16;
  const auto result =
      run_fault_campaign(circuit.module, 1, wl, sets, opts);
  const auto oracle = scalar_campaign(circuit.module, 1, /*sequential=*/false,
                                      wl, 16, sets);
  for (std::size_t i = 0; i < sets.size(); ++i) {
    EXPECT_EQ(result.variants[i].misclassified, oracle[i]);
  }
  EXPECT_EQ(result.golden.misclassified, 0u);
}

TEST(FaultCampaign, ThreadCountInvariantAndDeterministic) {
  const auto q = small_model();
  auto circuit = arch::build_sequential_svm(q);
  const auto wl = exhaustive_workload(q);
  const auto sets = sample_fault_sets(circuit.module, 2, 150, 5);
  std::vector<FaultCampaignResult> runs;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4},
                                    std::size_t{7}, std::size_t{1}}) {
    FaultCampaignOptions opts;
    opts.num_threads = threads;
    opts.max_samples = 20;
    runs.push_back(run_fault_campaign(
        circuit.module, circuit.cycles_per_inference, wl, sets, opts));
  }
  for (std::size_t r = 1; r < runs.size(); ++r) {
    EXPECT_EQ(runs[r].golden.misclassified, runs[0].golden.misclassified);
    ASSERT_EQ(runs[r].variants.size(), runs[0].variants.size());
    for (std::size_t i = 0; i < runs[0].variants.size(); ++i) {
      EXPECT_EQ(runs[r].variants[i].misclassified,
                runs[0].variants[i].misclassified)
          << "variant " << i << " differs between thread configs";
    }
  }
}

TEST(FaultCampaign, SharedLevelizationAndGenerators) {
  const auto q = small_model();
  auto circuit = arch::build_sequential_svm(q);
  const auto wl = exhaustive_workload(q);
  const auto singles = enumerate_single_faults(circuit.module);
  EXPECT_EQ(singles.size(), circuit.module.cells().size() * 2);
  for (std::size_t i = 0; i + 1 < singles.size(); i += 2) {
    ASSERT_EQ(singles[i].faults.size(), 1u);
    EXPECT_EQ(singles[i].faults[0].net, singles[i + 1].faults[0].net);
    EXPECT_FALSE(singles[i].faults[0].stuck_value);
    EXPECT_TRUE(singles[i + 1].faults[0].stuck_value);
  }
  const auto a = sample_fault_sets(circuit.module, 4, 10, 99);
  const auto b = sample_fault_sets(circuit.module, 4, 10, 99);
  ASSERT_EQ(a.size(), 10u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].faults.size(), 4u);
    for (std::size_t f = 0; f < 4; ++f) {
      EXPECT_EQ(a[i].faults[f].net, b[i].faults[f].net);
      EXPECT_EQ(a[i].faults[f].stuck_value, b[i].faults[f].stuck_value);
    }
  }
  FaultCampaignOptions opts;
  opts.levelization = sim::levelize_shared(circuit.module);
  opts.max_samples = 8;
  const auto r = run_fault_campaign(circuit.module,
                                    circuit.cycles_per_inference, wl,
                                    {singles[0], singles[1]}, opts);
  EXPECT_EQ(r.variants.size(), 2u);
}

TEST(FaultCampaign, AccuracyVsFaultCountCurve) {
  std::vector<FaultSet> sets(5);
  sets[0].faults = {StuckAtFault{10, false}};
  sets[1].faults = {StuckAtFault{11, true}};
  sets[2].faults = {StuckAtFault{10, false}, StuckAtFault{11, true}};
  sets[3].faults = {StuckAtFault{12, true}, StuckAtFault{13, false}};
  // sets[4] stays empty: a fault-free variant must average into the
  // 0-fault point alongside the golden reference, not corrupt it.
  FaultCampaignResult result;
  result.golden = {1, 10};  // 90% reference
  result.variants = {{2, 10}, {6, 10}, {5, 10}, {9, 10}, {3, 10}};
  const auto curve = accuracy_vs_fault_count(sets, result);
  ASSERT_EQ(curve.size(), 3u);
  EXPECT_EQ(curve[0].num_faults, 0u);
  EXPECT_EQ(curve[0].variants, 2u);
  EXPECT_NEAR(curve[0].mean_accuracy, 0.8, 1e-12);  // (0.9 + 0.7) / 2
  EXPECT_EQ(curve[0].broken, 0u);
  EXPECT_EQ(curve[1].num_faults, 1u);
  EXPECT_EQ(curve[1].variants, 2u);
  EXPECT_NEAR(curve[1].mean_accuracy, 0.6, 1e-12);  // (0.8 + 0.4) / 2
  EXPECT_EQ(curve[1].broken, 1u);
  EXPECT_EQ(curve[2].num_faults, 2u);
  EXPECT_EQ(curve[2].variants, 2u);
  EXPECT_NEAR(curve[2].mean_accuracy, 0.3, 1e-12);  // (0.5 + 0.1) / 2
  EXPECT_EQ(curve[2].broken, 2u);

  FaultCampaignResult lopsided;
  lopsided.variants.resize(1);
  EXPECT_THROW((void)accuracy_vs_fault_count(sets, lopsided),
               std::invalid_argument);
}

TEST(FaultCampaign, RejectsMalformedInputs) {
  const auto q = small_model();
  auto circuit = arch::build_sequential_svm(q);
  const auto wl = exhaustive_workload(q);
  const auto sets = enumerate_single_faults(circuit.module);
  CircuitWorkload empty;
  EXPECT_THROW((void)run_fault_campaign(circuit.module, 3, empty,
                                        {sets[0]}),
               std::invalid_argument);
  EXPECT_THROW((void)run_fault_campaign(circuit.module, 3, wl, {}),
               std::invalid_argument);
  FaultCampaignOptions zero;
  zero.max_samples = 0;
  EXPECT_THROW((void)run_fault_campaign(circuit.module, 3, wl, {sets[0]},
                                        zero),
               std::invalid_argument);
  // A fault on a constant or out-of-range net surfaces as the simulator's
  // invalid_argument/out_of_range, not a silent no-op.
  FaultSet bad;
  bad.faults = {StuckAtFault{netlist::kConst1, true}};
  EXPECT_THROW((void)run_fault_campaign(circuit.module, 3, wl, {bad}),
               std::invalid_argument);
  EXPECT_THROW((void)sample_fault_sets(circuit.module, 0, 3, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace pml::core
