// Failure paths of util::run_workers (now a shim over util::TaskPool),
// driven by the chaos allocation hook: worker exceptions must drain the
// claim queue, quiesce every started slot, and rethrow the first error;
// *submission* failures (std::bad_alloc queueing the group's tickets or
// spawning the first pool thread) must never strand a ticket or
// deadlock.  These paths back every evaluation fan-out, so they get
// direct coverage here; the pool itself is covered in
// test_util_task_pool.cpp.

#include "pml/util/alloc_hook.hpp"

PML_INSTALL_COUNTING_ALLOC_HOOK;

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <stdexcept>

#include "pml/util/parallel.hpp"

namespace pml::util {
namespace {

TEST(UtilParallel, SingleThreadRunsInlineOnCaller) {
  std::atomic<std::size_t> queue{0};
  std::size_t claimed = 0;
  run_workers(1, queue, 0, [&](std::size_t t) {
    EXPECT_EQ(t, 0u);
    for (;;) {
      const std::size_t i = queue.fetch_add(1);
      if (i >= 8) return;
      ++claimed;  // no synchronization needed: inline = this thread
    }
  });
  EXPECT_EQ(claimed, 8u);
}

TEST(UtilParallel, WorkerExceptionDrainsQueueJoinsAllAndRethrows) {
  constexpr std::size_t kItems = 10'000;
  std::atomic<std::size_t> queue{0};
  std::atomic<std::size_t> claimed{0};
  auto worker = [&](std::size_t /*t*/) {
    for (;;) {
      const std::size_t i = queue.fetch_add(1);
      if (i >= kItems) return;
      if (i == 7) throw std::runtime_error("worker 7 exploded");
      claimed.fetch_add(1);
    }
  };
  try {
    run_workers(4, queue, kItems, worker);
    FAIL() << "expected the worker exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "worker 7 exploded");
  }
  // The drain stored kItems into the claim counter, so siblings stopped
  // claiming almost immediately — nowhere near the full queue.
  EXPECT_LT(claimed.load(), kItems);
  // All threads joined: reusing the (drained) queue is safe.
  std::atomic<std::size_t> queue2{0};
  std::atomic<std::size_t> done{0};
  run_workers(4, queue2, 0, [&](std::size_t) {
    for (;;) {
      if (queue2.fetch_add(1) >= 64) return;
      done.fetch_add(1);
    }
  });
  EXPECT_EQ(done.load(), 64u);
}

TEST(UtilParallel, FirstOfConcurrentExceptionsWins) {
  // Every worker throws on its first claim; exactly one exception (the
  // first recorded) must surface, the rest are swallowed by the drain.
  std::atomic<std::size_t> queue{0};
  EXPECT_THROW(run_workers(4, queue, 16,
                           [&](std::size_t) {
                             (void)queue.fetch_add(1);
                             throw std::runtime_error("boom");
                           }),
               std::runtime_error);
}

TEST(UtilParallel, ThreadSpawnFailureNeverLeaksOrDeadlocks) {
  // Arm the nth allocation on THIS thread (the armed countdown is
  // thread-local, so worker-thread allocations are unaffected) and walk n
  // across the whole spawn sequence: small n fails pool.reserve (before
  // the try block — propagates without drain), later n fail inside a
  // std::thread constructor (the drain-join-rethrow path), larger n
  // either fire during the caller's inline worker run or never fire.
  // Every case must end with all spawned threads joined and no deadlock.
  bool saw_spawn_failure = false;
  bool saw_success = false;
  for (std::uint64_t nth = 1; nth <= 24; ++nth) {
    std::atomic<std::size_t> queue{0};
    std::atomic<std::size_t> claimed{0};
    auto worker = [&](std::size_t) {
      for (;;) {
        if (queue.fetch_add(1) >= 32) return;
        claimed.fetch_add(1);
      }
    };
    arm_alloc_failure(nth);
    try {
      run_workers(4, queue, 32, worker);
      disarm_alloc_failure();
      saw_success = true;
      EXPECT_EQ(claimed.load(), 32u);
    } catch (const std::bad_alloc&) {
      disarm_alloc_failure();
      saw_spawn_failure = true;
    }
    // Whatever happened, the pool is gone: a fresh run works.
    std::atomic<std::size_t> queue2{0};
    std::atomic<std::size_t> claimed2{0};
    run_workers(4, queue2, 32, [&](std::size_t) {
      for (;;) {
        if (queue2.fetch_add(1) >= 32) return;
        claimed2.fetch_add(1);
      }
    });
    EXPECT_EQ(claimed2.load(), 32u);
  }
  // The sweep must have exercised both outcomes, or the loop bound needs
  // raising — fail loudly rather than silently losing coverage.
  EXPECT_TRUE(saw_spawn_failure);
  EXPECT_TRUE(saw_success);
}

}  // namespace
}  // namespace pml::util
