// Direct coverage of util::TaskPool — the process-wide work-stealing
// pool behind every evaluation fan-out (run_workers shim), the sweep
// service's worker seats (submit_detached), and the precision search.
// The properties proven here are the ones the rest of the stack leans
// on: every group slot runs exactly once, slot-indexed merges are
// bit-identical regardless of which worker steals what, nested groups
// never deadlock (the submitting thread claims unclaimed slots itself),
// a throwing slot quiesces the group before rethrowing, cancellation
// checkpoints propagate through the shim, detached tasks queued before
// stop() still run, and a stopped pool restarts lazily.
//
// Runs under ThreadSanitizer in CI — the deque protocol is all-atomic
// precisely so these tests prove it race-free, not just lucky.

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "pml/util/cancellation.hpp"
#include "pml/util/parallel.hpp"
#include "pml/util/task_pool.hpp"

namespace pml::util {
namespace {

TEST(TaskPool, SingletonIsStableAndAtLeastTwoWide) {
  TaskPool& a = TaskPool::instance();
  TaskPool& b = TaskPool::instance();
  EXPECT_EQ(&a, &b);
  // The floor of two guarantees progress when one task parks on a test
  // gate (the chaos/robustness harnesses rely on this).
  EXPECT_GE(a.size(), 2u);
}

TEST(TaskPool, GroupRunsEverySlotExactlyOnce) {
  TaskPool& pool = TaskPool::instance();
  const std::size_t slots = 3 * pool.size() + 1;  // more slots than workers
  std::vector<int> hits(slots, 0);
  // Distinct cells per slot: the group join publishes the writes.
  pool.run_group(slots, "test.slots",
                 [&](std::size_t slot) { hits[slot] += 1; });
  for (std::size_t i = 0; i < slots; ++i) {
    EXPECT_EQ(hits[i], 1) << "slot " << i;
  }
}

TEST(TaskPool, SlotMergeIsDeterministicUnderStealing) {
  // The run_workers shape: workers claim items from a shared counter and
  // write results by item index.  Which worker computes which item (and
  // who steals whose ticket) varies run to run; the merged vector must
  // not.  f(i) is arbitrary but order-sensitive enough to catch an
  // index mixup.
  constexpr std::size_t kItems = 4096;
  const auto f = [](std::size_t i) {
    return static_cast<std::uint64_t>(i) * 2654435761u + 17;
  };
  std::vector<std::uint64_t> expected(kItems);
  for (std::size_t i = 0; i < kItems; ++i) expected[i] = f(i);

  TaskPool& pool = TaskPool::instance();
  for (int round = 0; round < 5; ++round) {
    std::vector<std::uint64_t> out(kItems, 0);
    std::atomic<std::size_t> next{0};
    pool.run_group(pool.size(), "test.merge", [&](std::size_t) {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= kItems) return;
        out[i] = f(i);
      }
    });
    EXPECT_EQ(out, expected) << "round " << round;
  }
}

TEST(TaskPool, NestedGroupsDoNotDeadlock) {
  // Saturate the pool with an outer group, then fan out again from every
  // slot.  Inner slots that no sibling picks up are claimed by the
  // submitting (pool) thread itself, so this completes even when every
  // worker is already busy — the property that lets a sweep-service job
  // fan out its verification shards from inside a pool task.
  TaskPool& pool = TaskPool::instance();
  const std::size_t outer = 2 * pool.size();
  constexpr std::size_t kInner = 4;
  std::atomic<std::size_t> ran{0};
  pool.run_group(outer, "test.outer", [&](std::size_t) {
    pool.run_group(kInner, "test.inner", [&](std::size_t) {
      ran.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(ran.load(), outer * kInner);
}

TEST(TaskPool, ThrowingSlotQuiescesGroupThenRethrows) {
  TaskPool& pool = TaskPool::instance();
  const std::size_t slots = pool.size() + 3;
  std::atomic<std::size_t> finished{0};
  try {
    pool.run_group(slots, "test.throw", [&](std::size_t slot) {
      if (slot == 2) throw std::runtime_error("slot 2 exploded");
      finished.fetch_add(1, std::memory_order_relaxed);
    });
    FAIL() << "expected the slot exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "slot 2 exploded");
  }
  // A group throw cancels nothing by itself (drain policy belongs to the
  // run_workers shim): every non-throwing slot still ran, and all of
  // them finished before the rethrow.
  EXPECT_EQ(finished.load(), slots - 1);
}

TEST(TaskPool, CancellationCheckpointStopsSiblingsThroughShim) {
  // The evaluation stack's cancellation contract: a worker that trips a
  // checkpoint throws util::Cancelled; run_workers drains the claim
  // queue so siblings stop claiming, and the Cancelled surfaces to the
  // caller intact (reason and all).
  constexpr std::size_t kItems = 100'000;
  std::atomic<bool> cancel{false};
  const CancellationToken token(&cancel);
  std::atomic<std::size_t> queue{0};
  std::atomic<std::size_t> claimed{0};
  try {
    run_workers(
        4, queue, kItems,
        [&](std::size_t) {
          for (;;) {
            const std::size_t i = queue.fetch_add(1);
            if (i >= kItems) return;
            if (i == 10) cancel.store(true);  // some worker trips the flag
            token.check("test.checkpoint");
            claimed.fetch_add(1, std::memory_order_relaxed);
          }
        },
        "test.cancel");
    FAIL() << "expected util::Cancelled to propagate";
  } catch (const Cancelled& c) {
    EXPECT_EQ(c.reason(), Cancelled::Reason::kCancelled);
  }
  EXPECT_LT(claimed.load(), kItems);
}

TEST(TaskPool, DetachedTasksQueuedBeforeStopStillRun) {
  TaskPool& pool = TaskPool::instance();
  constexpr int kTasks = 32;
  std::mutex mu;
  std::condition_variable cv;
  int done = 0;
  for (int i = 0; i < kTasks; ++i) {
    pool.submit_detached("test.detached", [&] {
      std::lock_guard<std::mutex> lk(mu);
      if (++done == kTasks) cv.notify_all();
    });
  }
  // Workers drain their queues before honoring stop(), so this joins
  // with every task executed even if stop() wins the race to the lock.
  pool.stop();
  std::unique_lock<std::mutex> lk(mu);
  cv.wait(lk, [&] { return done == kTasks; });
  EXPECT_EQ(done, kTasks);
}

TEST(TaskPool, RestartsLazilyAfterStop) {
  TaskPool& pool = TaskPool::instance();
  pool.stop();
  pool.stop();  // idempotent
  const std::uint64_t started_before = pool.threads_started();
  std::atomic<std::size_t> ran{0};
  pool.run_group(pool.size() + 1, "test.restart", [&](std::size_t) {
    ran.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(ran.load(), pool.size() + 1);
  // The group forced a fresh spawn; a second group on the warm pool must
  // not (threads_started is the bench_task_pool no-spawn gate).
  const std::uint64_t started_warm = pool.threads_started();
  EXPECT_GT(started_warm, started_before);
  pool.run_group(pool.size() + 1, "test.warm", [&](std::size_t) {
    ran.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(pool.threads_started(), started_warm);
}

}  // namespace
}  // namespace pml::util
