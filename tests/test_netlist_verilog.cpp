// Structural Verilog export.

#include <gtest/gtest.h>

#include <sstream>

#include "pml/netlist/verilog.hpp"

namespace pml::netlist {
namespace {

TEST(Verilog, CombinationalModule) {
  Module m("adder_bit");
  const auto a = m.add_input_port("a", 1)[0];
  const auto b = m.add_input_port("b", 1)[0];
  const auto sum = m.xor2(a, b);
  const auto carry = m.and2(a, b);
  m.add_output_port("sum", {sum});
  m.add_output_port("carry", {carry});
  const std::string v = to_verilog(m);
  EXPECT_NE(v.find("module adder_bit ("), std::string::npos);
  EXPECT_NE(v.find("input  wire a"), std::string::npos);
  EXPECT_NE(v.find("output wire sum"), std::string::npos);
  EXPECT_NE(v.find("a ^ b"), std::string::npos);
  EXPECT_NE(v.find("a & b"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  EXPECT_EQ(v.find("always"), std::string::npos) << "no clock when no DFFs";
}

TEST(Verilog, SequentialModuleHasClockAndReset) {
  Module m("toggler");
  const auto d = m.new_net();
  const auto q = m.dff(d, /*init=*/true);
  m.drive_net(d, m.inv(q));
  m.add_output_port("q", {q});
  const std::string v = to_verilog(m);
  EXPECT_NE(v.find("input  wire clk"), std::string::npos);
  EXPECT_NE(v.find("input  wire rst_n"), std::string::npos);
  EXPECT_NE(v.find("always @(posedge clk or negedge rst_n)"),
            std::string::npos);
  EXPECT_NE(v.find("<= 1'b1;"), std::string::npos) << "reset loads init";
}

TEST(Verilog, BusPortsAreVectors) {
  Module m("bus");
  const auto p = m.add_input_port("data", 4);
  m.add_output_port("out", {p[3], p[2], p[1], p[0]});
  const std::string v = to_verilog(m);
  EXPECT_NE(v.find("input  wire [3:0] data"), std::string::npos);
  EXPECT_NE(v.find("output wire [3:0] out"), std::string::npos);
  EXPECT_NE(v.find("assign out[0] = data[3];"), std::string::npos);
}

TEST(Verilog, ConstantsAndMux) {
  Module m("cm");
  const auto p = m.add_input_port("p", 2);
  const auto raw =
      m.add_gate_raw(CellType::kMux2, kConst0, p[0], p[1]);
  m.add_output_port("y", {raw, kConst1});
  const std::string v = to_verilog(m);
  EXPECT_NE(v.find("p[1] ? p[0] : 1'b0"), std::string::npos);
  EXPECT_NE(v.find("assign y[1] = 1'b1;"), std::string::npos);
}

TEST(Verilog, GroupCommentsEmitted) {
  Module m("grp");
  const auto p = m.add_input_port("p", 2);
  m.begin_group("voter");
  (void)m.add_gate_raw(CellType::kAnd2, p[0], p[1]);
  m.end_group();
  VerilogOptions opts;
  const std::string with = to_verilog(m, opts);
  EXPECT_NE(with.find("// --- voter ---"), std::string::npos);
  opts.emit_groups_as_comments = false;
  const std::string without = to_verilog(m, opts);
  EXPECT_EQ(without.find("// --- voter ---"), std::string::npos);
}

}  // namespace
}  // namespace pml::netlist
