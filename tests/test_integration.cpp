// Cross-cutting integration tests on *generated* architectures:
//  - cycle-simulator vs event-simulator equivalence on the sequential SVM,
//  - Verilog export of real designs is well-formed,
//  - VCD tracing of a classification,
//  - fault injection on a generated circuit degrades gracefully,
//  - group/area accounting is consistent across analyses.

#include <gtest/gtest.h>

#include <sstream>

#include "pml/arch/parallel_svm.hpp"
#include "pml/arch/sequential_svm.hpp"
#include "pml/cells/library.hpp"
#include "pml/netlist/verilog.hpp"
#include "pml/power/power.hpp"
#include "pml/sim/cycle_sim.hpp"
#include "pml/sim/event_sim.hpp"
#include "pml/sim/vcd.hpp"
#include "pml/sta/timing.hpp"

namespace pml {
namespace {

quant::QuantizedSvm demo_model() {
  quant::QuantizedSvm q;
  q.strategy = ml::MulticlassStrategy::kOneVsRest;
  q.num_classes = 4;
  q.input_format = quant::input_format(3);
  q.weight_format =
      fixed::FixedFormat{.total_bits = 5, .frac_bits = 4, .is_signed = true};
  q.classifiers = {
      quant::QuantizedClassifier{{7, -3, 5, 0, -12}, 4},
      quant::QuantizedClassifier{{-8, 15, -1, 6, 3}, -7},
      quant::QuantizedClassifier{{2, 2, -14, 9, 1}, 0},
      quant::QuantizedClassifier{{-5, -5, 8, -8, 10}, 12},
  };
  return q;
}

std::vector<std::int64_t> pattern(std::uint64_t seed, int features,
                                  std::int64_t xmax) {
  std::vector<std::int64_t> xq;
  std::uint64_t s = seed * 2654435761u + 99;
  for (int j = 0; j < features; ++j) {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    xq.push_back(static_cast<std::int64_t>(s % (xmax + 1)));
  }
  return xq;
}

TEST(Integration, EventAndCycleSimAgreeOnSequentialSvm) {
  const auto q = demo_model();
  auto circuit = arch::build_sequential_svm(q);
  const auto lib = cells::CellLibrary::egfet();
  sim::CycleSimulator cs(circuit.module);
  sim::EventSimulator es(circuit.module, lib);
  for (std::uint64_t t = 0; t < 30; ++t) {
    const auto xq = pattern(t, 5, q.input_format.max_code());
    for (std::size_t j = 0; j < xq.size(); ++j) {
      const std::string port = "x" + std::to_string(j);
      cs.set_port(port, static_cast<std::uint64_t>(xq[j]));
      es.set_port(port, static_cast<std::uint64_t>(xq[j]));
    }
    for (int c = 0; c < circuit.cycles_per_inference; ++c) {
      cs.step();
      es.step();
      EXPECT_EQ(cs.port_unsigned("score"), es.port_unsigned("score"));
    }
    EXPECT_EQ(cs.port_unsigned("class"), es.port_unsigned("class"));
    EXPECT_EQ(static_cast<int>(cs.port_unsigned("class")), q.predict_codes(xq));
  }
}

TEST(Integration, EventSimCountsAtLeastFunctionalToggles) {
  const auto q = demo_model();
  auto circuit = arch::build_parallel_svm(q);
  const auto lib = cells::CellLibrary::egfet();
  sim::CycleSimulator cs(circuit.module);
  sim::EventSimulator es(circuit.module, lib);
  // Warm both up, then compare counted transitions over a workload.
  for (std::uint64_t t = 0; t < 10; ++t) {
    const auto xq = pattern(t, 5, q.input_format.max_code());
    for (std::size_t j = 0; j < xq.size(); ++j) {
      cs.set_port("x" + std::to_string(j), static_cast<std::uint64_t>(xq[j]));
      es.set_port("x" + std::to_string(j), static_cast<std::uint64_t>(xq[j]));
    }
    cs.propagate();
    es.settle();
  }
  std::uint64_t functional = 0, with_glitches = 0;
  for (std::size_t n = 0; n < circuit.module.num_nets(); ++n) {
    functional += cs.toggles()[n];
    with_glitches += es.activity().net_toggles[n];
  }
  EXPECT_GE(with_glitches, functional)
      << "event simulation must see every functional transition";
  EXPECT_GT(with_glitches, functional)
      << "a parallel datapath must exhibit some glitching";
}

TEST(Integration, VerilogExportOfGeneratedDesigns) {
  const auto q = demo_model();
  auto seq = arch::build_sequential_svm(q);
  const std::string v = netlist::to_verilog(seq.module);
  EXPECT_NE(v.find("module seq_svm_4c5f ("), std::string::npos);
  EXPECT_NE(v.find("input  wire [2:0] x0"), std::string::npos);
  EXPECT_NE(v.find("output wire [1:0] class"), std::string::npos);
  EXPECT_NE(v.find("always @(posedge clk"), std::string::npos);
  EXPECT_NE(v.find("// --- voter ---"), std::string::npos);
  // Every cell output must be declared exactly once.
  std::size_t wires = 0, pos = 0;
  while ((pos = v.find("  wire n", pos)) != std::string::npos) {
    ++wires;
    ++pos;
  }
  std::size_t regs = 0;
  pos = 0;
  while ((pos = v.find("  reg  n", pos)) != std::string::npos) {
    ++regs;
    ++pos;
  }
  EXPECT_EQ(wires + regs, seq.module.cells().size());
  EXPECT_EQ(regs, seq.module.stats().num_dffs);
}

TEST(Integration, VcdTraceOfClassification) {
  const auto q = demo_model();
  auto circuit = arch::build_sequential_svm(q);
  sim::CycleSimulator sim(circuit.module);
  std::ostringstream os;
  sim::VcdWriter vcd(sim, os);
  const auto xq = pattern(3, 5, q.input_format.max_code());
  for (std::size_t j = 0; j < xq.size(); ++j) {
    sim.set_port("x" + std::to_string(j), static_cast<std::uint64_t>(xq[j]));
  }
  for (int c = 0; c < circuit.cycles_per_inference; ++c) {
    sim.propagate();
    vcd.sample(static_cast<std::uint64_t>(c));
    sim.step();
  }
  const std::string out = os.str();
  EXPECT_NE(out.find("$var wire 2 "), std::string::npos) << "class bus";
  EXPECT_NE(out.find("#0"), std::string::npos);
  EXPECT_NE(out.find("#" + std::to_string(circuit.cycles_per_inference - 1)),
            std::string::npos)
      << "the done pulse on the last cycle must appear";
}

TEST(Integration, FaultInjectionOnGeneratedCircuit) {
  const auto q = demo_model();
  auto circuit = arch::build_sequential_svm(q);
  sim::CycleSimulator sim(circuit.module);
  const auto xq = pattern(5, 5, q.input_format.max_code());
  auto classify = [&]() {
    for (std::size_t j = 0; j < xq.size(); ++j) {
      sim.set_port("x" + std::to_string(j),
                   static_cast<std::uint64_t>(xq[j]));
    }
    for (int c = 0; c < circuit.cycles_per_inference; ++c) sim.step();
    return static_cast<int>(sim.port_unsigned("class"));
  };
  const int healthy = classify();
  EXPECT_EQ(healthy, q.predict_codes(xq));
  // Breaking the class-id register output pins the prediction.
  const auto* class_port = circuit.module.find_output("class");
  ASSERT_NE(class_port, nullptr);
  sim.force_net(class_port->nets[0], true);
  sim.force_net(class_port->nets[1], true);
  EXPECT_EQ(classify(), 3) << "stuck-at-1 id register reads as class 3";
  sim.clear_forces();
  EXPECT_EQ(classify(), healthy) << "clearing faults restores behaviour";
}

TEST(Integration, GroupAreasSumToTotal) {
  const auto q = demo_model();
  auto circuit = arch::build_sequential_svm(q);
  const auto lib = cells::CellLibrary::egfet();
  sim::EventSimulator es(circuit.module, lib);
  es.step();
  const auto pr = power::estimate(circuit.module, lib, es.activity(), 1,
                                  static_cast<std::size_t>(
                                      circuit.cycles_per_inference),
                                  30.0);
  double group_area = 0.0;
  for (const auto& g : pr.groups) group_area += g.area_cm2;
  // Group areas are pre-routing; total applies the routing factor.
  EXPECT_NEAR(group_area * lib.calibration().routing_area_factor,
              pr.area_cm2, 1e-9);
}

TEST(Integration, StaAgreesWithLogicDepthBounds) {
  const auto q = demo_model();
  auto seq = arch::build_sequential_svm(q);
  const auto lib = cells::CellLibrary::egfet();
  const auto timing = sta::analyze(seq.module, lib);
  const auto lv = sim::levelize(seq.module);
  EXPECT_LE(timing.logic_depth, static_cast<int>(lv.max_depth) + 1);
  // Physical sanity: the critical path must cost at least depth x the
  // fastest cell and at most depth x the slowest loaded cell.
  EXPECT_GT(timing.critical_path_ms,
            0.1 * static_cast<double>(timing.logic_depth));
  EXPECT_GT(timing.max_frequency_hz, 1.0);
  EXPECT_LT(timing.max_frequency_hz, 500.0);
}

}  // namespace
}  // namespace pml
