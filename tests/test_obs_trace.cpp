// pml::obs tracer: spans record only while a tracer is installed, the
// emitted Chrome trace JSON parses back with an independent parser
// (tests/json_test_util.hpp) and carries the required event fields, spans
// nest by time containment on one thread, and util::run_workers fan-outs
// land on distinct, named thread tracks.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "json_test_util.hpp"
#include "pml/obs/json.hpp"
#include "pml/obs/trace.hpp"
#include "pml/util/parallel.hpp"

namespace pml::obs {
namespace {

TEST(ObsTrace, NoTracerNoRecording) {
  ASSERT_FALSE(Tracer::enabled());
  ASSERT_EQ(Tracer::current(), nullptr);
  // Harmless without a sink — and invisible: nothing to assert against
  // except that enabled() stayed false and a later tracer starts empty.
  { PML_OBS_SPAN("orphan"); }
  Tracer t;
  Tracer::install(&t);
  EXPECT_TRUE(Tracer::enabled());
  Tracer::uninstall();
  EXPECT_TRUE(t.events().empty());
}

TEST(ObsTrace, SecondInstallThrows) {
  Tracer a;
  Tracer b;
  Tracer::install(&a);
  EXPECT_THROW(Tracer::install(&b), std::logic_error);
  Tracer::uninstall();
}

TEST(ObsTrace, SpansNestByTimeContainment) {
  Tracer t;
  Tracer::install(&t);
  {
    PML_OBS_SPAN("outer");
    { PML_OBS_SPAN("inner.a"); }
    { PML_OBS_SPAN("inner.b"); }
  }
  Tracer::uninstall();

  const std::vector<TraceEvent> evs = t.events();
  ASSERT_EQ(evs.size(), 3u);
  // Spans are recorded at destruction: inner.a, inner.b, outer.
  EXPECT_EQ(evs[0].name, "inner.a");
  EXPECT_EQ(evs[1].name, "inner.b");
  EXPECT_EQ(evs[2].name, "outer");
  const TraceEvent& outer = evs[2];
  const std::uint32_t tid = outer.tid;
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(evs[i].tid, tid) << evs[i].name;
    EXPECT_GE(evs[i].start_ns, outer.start_ns) << evs[i].name;
    EXPECT_LE(evs[i].start_ns + evs[i].dur_ns, outer.start_ns + outer.dur_ns)
        << evs[i].name;
  }
  // inner.a completes before inner.b starts.
  EXPECT_LE(evs[0].start_ns + evs[0].dur_ns, evs[1].start_ns);
}

TEST(ObsTrace, MidSpanInstallRecordsNothing) {
  // The enabled() check is at span entry by design: a tracer installed
  // while the span is already open must not see a bogus event.
  Tracer t;
  {
    ScopedSpan span("too.late");
    Tracer::install(&t);
  }
  Tracer::uninstall();
  EXPECT_TRUE(t.events().empty());
}

TEST(ObsTrace, RunWorkersSpansLandOnDistinctNamedTracks) {
  constexpr std::size_t kThreads = 4;
  Tracer t;
  Tracer::install(&t);
  {
    PML_OBS_SPAN("fanout");
    std::atomic<std::size_t> queue{0};
    util::run_workers(kThreads, queue, /*drain_to=*/0, [&](std::size_t ti) {
      set_thread_name("test-worker-" + std::to_string(ti));
      PML_OBS_SPAN("fanout.worker");
      // Claim a little work so the span bounds a real loop.
      while (queue.fetch_add(1) < 64) {
      }
    });
  }
  Tracer::uninstall();

  const std::vector<TraceEvent> evs = t.events();
  std::set<std::uint32_t> worker_tids;
  for (const TraceEvent& e : evs) {
    if (e.name == "fanout.worker") worker_tids.insert(e.tid);
  }
  // One span per worker, each on its own dense thread id — run_workers
  // calls every worker body exactly once even on a single-core host.
  EXPECT_EQ(worker_tids.size(), kThreads);

  // The thread-name table feeds "M" metadata events in the JSON.
  std::set<std::string> named;
  std::ostringstream os;
  t.write(os);
  const testjson::Value parsed = testjson::parse(os.str());
  for (const testjson::Value& ev : parsed.at("traceEvents").items) {
    if (ev.at("ph").string != "M") continue;
    EXPECT_EQ(ev.at("name").string, "thread_name");
    named.insert(ev.at("args").at("name").string);
  }
  for (std::size_t ti = 0; ti < kThreads; ++ti) {
    EXPECT_TRUE(named.count("test-worker-" + std::to_string(ti)) == 1)
        << "missing thread name for worker " << ti;
  }
}

TEST(ObsTrace, WrittenJsonParsesBackWithRequiredFields) {
  Tracer t;
  Tracer::install(&t);
  {
    PML_OBS_SPAN("phase.one");
    { PML_OBS_SPAN(std::string("phase.one.sub \"quoted\\\" name")); }
  }
  { PML_OBS_SPAN("phase.two"); }
  Tracer::uninstall();

  Json other = Json::object();
  other.set("note", "parse-back test");
  std::ostringstream os;
  t.write(os, std::move(other));

  const testjson::Value doc = testjson::parse(os.str());
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("displayTimeUnit").string, "ms");
  EXPECT_EQ(doc.at("otherData").at("note").string, "parse-back test");

  std::size_t x_events = 0;
  std::set<std::string> names;
  for (const testjson::Value& ev : doc.at("traceEvents").items) {
    ASSERT_TRUE(ev.is_object());
    const std::string& ph = ev.at("ph").string;
    if (ph == "M") continue;
    ASSERT_EQ(ph, "X");
    ++x_events;
    names.insert(ev.at("name").string);
    EXPECT_TRUE(ev.at("tid").is_number());
    EXPECT_TRUE(ev.at("pid").is_number());
    EXPECT_TRUE(ev.at("ts").is_number());
    EXPECT_TRUE(ev.at("dur").is_number());
    EXPECT_GE(ev.at("ts").number, 0.0);
    EXPECT_GE(ev.at("dur").number, 0.0);
    EXPECT_EQ(ev.at("cat").string, "pml");
  }
  EXPECT_EQ(x_events, 3u);
  // The escaped-quote span name survives the round trip byte-exactly.
  EXPECT_EQ(names.count("phase.one.sub \"quoted\\\" name"), 1u);
}

}  // namespace
}  // namespace pml::obs
