// SIMD backend contract: enum plumbing (names, lanes, resolution, the
// PML_SIM_BACKEND environment override), and — the load-bearing part —
// bit-exact equivalence of every compiled+supported lane-word backend
// against the u64 reference on every generated architecture, through
// every driver (probe, verify, activity, fault campaign).

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "pml/arch/mlp_circuit.hpp"
#include "pml/arch/parallel_svm.hpp"
#include "pml/arch/sequential_mlp.hpp"
#include "pml/arch/sequential_svm.hpp"
#include "pml/cells/library.hpp"
#include "pml/core/activity.hpp"
#include "pml/core/backend_probe.hpp"
#include "pml/core/fault_campaign.hpp"
#include "pml/core/verify.hpp"
#include "pml/sim/backend.hpp"
#include "pml/sim/swar.hpp"

namespace pml::core {
namespace {

using quant::QuantizedClassifier;
using quant::QuantizedMlp;
using quant::QuantizedSvm;
using sim::Backend;

// --- deterministic model generators (same style as test_sim_batch) ----------

std::uint64_t xorshift(std::uint64_t& s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}

QuantizedSvm random_svm(int classes, int features, int input_bits,
                        int weight_bits, std::uint64_t seed) {
  QuantizedSvm q;
  q.strategy = ml::MulticlassStrategy::kOneVsRest;
  q.num_classes = classes;
  q.input_format = quant::input_format(input_bits);
  q.weight_format = fixed::FixedFormat{.total_bits = weight_bits,
                                       .frac_bits = weight_bits - 1,
                                       .is_signed = true};
  std::uint64_t s = seed * 0x9E3779B97F4A7C15ull + 1;
  const std::int64_t wmin = q.weight_format.min_code();
  const std::int64_t wmax = q.weight_format.max_code();
  for (int k = 0; k < classes; ++k) {
    QuantizedClassifier c;
    for (int j = 0; j < features; ++j) {
      c.w.push_back(wmin + static_cast<std::int64_t>(
                               xorshift(s) % static_cast<std::uint64_t>(
                                                 wmax - wmin + 1)));
    }
    c.b = -8 + static_cast<std::int64_t>(xorshift(s) % 17);
    q.classifiers.push_back(std::move(c));
  }
  return q;
}

QuantizedMlp random_mlp(int inputs, int hidden, int outputs, int input_bits,
                        std::uint64_t seed) {
  QuantizedMlp q;
  q.num_inputs = inputs;
  q.num_hidden = hidden;
  q.num_outputs = outputs;
  q.input_format = quant::input_format(input_bits);
  q.w1_format =
      fixed::FixedFormat{.total_bits = 4, .frac_bits = 3, .is_signed = true};
  q.hidden_format =
      fixed::FixedFormat{.total_bits = 4, .frac_bits = 4, .is_signed = false};
  q.w2_format =
      fixed::FixedFormat{.total_bits = 4, .frac_bits = 3, .is_signed = true};
  q.hidden_shift = 3;
  std::uint64_t s = seed ^ 0x5555AAAAull;
  auto rand_w = [&s]() {
    return -8 + static_cast<std::int64_t>(xorshift(s) % 16);
  };
  q.w1.resize(static_cast<std::size_t>(hidden));
  q.b1.resize(static_cast<std::size_t>(hidden));
  for (int i = 0; i < hidden; ++i) {
    for (int j = 0; j < inputs; ++j) {
      q.w1[static_cast<std::size_t>(i)].push_back(rand_w());
    }
    q.b1[static_cast<std::size_t>(i)] = rand_w() * 4;
  }
  q.w2.resize(static_cast<std::size_t>(outputs));
  q.b2.resize(static_cast<std::size_t>(outputs));
  for (int k = 0; k < outputs; ++k) {
    for (int i = 0; i < hidden; ++i) {
      q.w2[static_cast<std::size_t>(k)].push_back(rand_w());
    }
    q.b2[static_cast<std::size_t>(k)] = rand_w() * 2;
  }
  return q;
}

std::vector<std::vector<std::int64_t>> random_samples(std::size_t count,
                                                      int features,
                                                      std::int64_t max_code,
                                                      std::uint64_t seed) {
  std::uint64_t s = seed | 1;
  std::vector<std::vector<std::int64_t>> samples(count);
  for (auto& row : samples) {
    for (int j = 0; j < features; ++j) {
      row.push_back(static_cast<std::int64_t>(
          xorshift(s) % static_cast<std::uint64_t>(max_code + 1)));
    }
  }
  return samples;
}

/// The wide backends this binary can actually run here — the comparison
/// targets of every equivalence test.  Empty on a plain x86-64 build/CPU;
/// the tests then skip (the u64 path is already covered by the
/// scalar-equivalence suites).
std::vector<Backend> wide_backends() {
  std::vector<Backend> wide;
  for (const Backend b : sim::available_backends()) {
    if (b != Backend::kU64) wide.push_back(b);
  }
  return wide;
}

/// Scoped PML_SIM_BACKEND override that restores the previous value (the
/// CI matrix legs run this whole binary under PML_SIM_BACKEND=u64).
class ScopedBackendEnv {
 public:
  explicit ScopedBackendEnv(const char* value) {
    const char* old = std::getenv("PML_SIM_BACKEND");
    if (old != nullptr) saved_ = old;
    if (value != nullptr) {
      ::setenv("PML_SIM_BACKEND", value, 1);
    } else {
      ::unsetenv("PML_SIM_BACKEND");
    }
  }
  ~ScopedBackendEnv() {
    if (saved_.has_value()) {
      ::setenv("PML_SIM_BACKEND", saved_->c_str(), 1);
    } else {
      ::unsetenv("PML_SIM_BACKEND");
    }
  }
  ScopedBackendEnv(const ScopedBackendEnv&) = delete;
  ScopedBackendEnv& operator=(const ScopedBackendEnv&) = delete;

 private:
  std::optional<std::string> saved_;
};

// --- enum plumbing -----------------------------------------------------------

TEST(SimBackend, NamesRoundTrip) {
  for (const Backend b : {Backend::kAuto, Backend::kU64, Backend::kAvx2,
                          Backend::kAvx512}) {
    EXPECT_EQ(sim::parse_backend(sim::backend_name(b)), b);
  }
  EXPECT_STREQ(sim::backend_name(Backend::kU64), "u64");
  EXPECT_STREQ(sim::backend_name(Backend::kAvx512), "avx512");
  EXPECT_THROW((void)sim::parse_backend("sse9"), std::invalid_argument);
  EXPECT_THROW((void)sim::parse_backend(""), std::invalid_argument);
}

TEST(SimBackend, LaneWidths) {
  EXPECT_EQ(sim::backend_lanes(Backend::kU64), 64u);
  EXPECT_EQ(sim::backend_lanes(Backend::kAvx2), 256u);
  EXPECT_EQ(sim::backend_lanes(Backend::kAvx512), 512u);
  EXPECT_THROW((void)sim::backend_lanes(Backend::kAuto),
               std::invalid_argument);
}

TEST(SimBackend, U64AlwaysAvailable) {
  EXPECT_TRUE(sim::backend_compiled(Backend::kU64));
  EXPECT_TRUE(sim::backend_cpu_supported(Backend::kU64));
  EXPECT_TRUE(sim::backend_available(Backend::kU64));
  EXPECT_EQ(sim::resolve_backend(Backend::kU64), Backend::kU64);
  const auto avail = sim::available_backends();
  ASSERT_FALSE(avail.empty());
  EXPECT_EQ(avail.front(), Backend::kU64);
}

TEST(SimBackend, ConcreteResolutionIsAllOrNothing) {
  for (const Backend b : {Backend::kAvx2, Backend::kAvx512}) {
    if (sim::backend_available(b)) {
      EXPECT_EQ(sim::resolve_backend(b), b);
    } else {
      EXPECT_THROW((void)sim::resolve_backend(b), std::runtime_error);
    }
  }
}

TEST(SimBackend, AutoPicksWidestAvailable) {
  ScopedBackendEnv no_override(nullptr);
  const auto avail = sim::available_backends();
  EXPECT_EQ(sim::resolve_backend(Backend::kAuto), avail.back());
}

TEST(SimBackend, EnvOverridesAuto) {
  {
    ScopedBackendEnv force_u64("u64");
    EXPECT_EQ(sim::resolve_backend(Backend::kAuto), Backend::kU64);
    // The override only applies to kAuto; a concrete request wins.
    const auto avail = sim::available_backends();
    EXPECT_EQ(sim::resolve_backend(avail.back()), avail.back());
  }
  {
    ScopedBackendEnv noop("auto");
    const auto avail = sim::available_backends();
    EXPECT_EQ(sim::resolve_backend(Backend::kAuto), avail.back());
  }
  {
    ScopedBackendEnv garbage("pentium");
    EXPECT_THROW((void)sim::resolve_backend(Backend::kAuto),
                 std::invalid_argument);
  }
  if (!sim::backend_available(Backend::kAvx512)) {
    // A forced-but-unavailable backend must fail loudly, never fall back.
    ScopedBackendEnv force_wide("avx512");
    EXPECT_THROW((void)sim::resolve_backend(Backend::kAuto),
                 std::runtime_error);
  }
}

TEST(SimBackend, EvalCellLanesRejectsSequentialCells) {
  EXPECT_THROW((void)sim::eval_cell_lanes(netlist::CellType::kDff, 1, 0, 0),
               std::logic_error);
}

// --- bit-exact equivalence vs the u64 reference ------------------------------

/// Probe `module` under u64 and under `wide`, and require exact equality
/// of every per-sample class value and every per-net toggle total (the
/// reset-per-batch protocol makes both width-invariant by construction —
/// see core/backend_probe.hpp).
void expect_probe_equal(const netlist::Module& module, int cycles,
                        const std::vector<std::vector<std::int64_t>>& xs,
                        Backend wide) {
  const BatchProbeResult ref =
      probe_batch_backend(module, cycles, xs, Backend::kU64);
  const BatchProbeResult got = probe_batch_backend(module, cycles, xs, wide);
  EXPECT_EQ(ref.lanes, 64u);
  EXPECT_EQ(got.lanes, sim::backend_lanes(wide));
  ASSERT_EQ(ref.class_values.size(), xs.size());
  ASSERT_EQ(got.class_values.size(), xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    ASSERT_EQ(got.class_values[i], ref.class_values[i])
        << sim::backend_name(wide) << " diverges on sample " << i;
  }
  EXPECT_EQ(got.net_toggles, ref.net_toggles)
      << sim::backend_name(wide) << " toggle totals diverge";
}

TEST(SimBackendEquivalence, ProbeMatchesU64OnEveryArchitecture) {
  const auto wide = wide_backends();
  if (wide.empty()) GTEST_SKIP() << "no wide SIMD backend on this machine";
  // 700 samples: >1 batch and a ragged final batch at every lane width
  // (700 = 10x64+60 = 2x256+188 = 1x512+188).
  constexpr std::size_t kSamples = 700;
  const QuantizedSvm q = random_svm(4, 3, 3, 4, 17);
  const auto xs = random_samples(kSamples, 3, q.input_format.max_code(), 29);
  const QuantizedMlp m = random_mlp(3, 4, 3, 3, 53);
  const auto mxs = random_samples(kSamples, 3, m.input_format.max_code(), 31);
  for (const Backend b : wide) {
    {
      auto c = arch::build_sequential_svm(q);
      expect_probe_equal(c.module, c.cycles_per_inference, xs, b);
    }
    {
      auto c = arch::build_parallel_svm(q);
      expect_probe_equal(c.module, c.cycles_per_inference, xs, b);
    }
    {
      auto c = arch::build_mlp_circuit(m);
      expect_probe_equal(c.module, c.cycles_per_inference, mxs, b);
    }
    {
      auto c = arch::build_sequential_mlp(m);
      expect_probe_equal(c.module, c.cycles_per_inference, mxs, b);
    }
  }
}

CircuitWorkload svm_workload(const QuantizedSvm& q,
                             const std::vector<std::vector<std::int64_t>>& xs) {
  CircuitWorkload wl;
  wl.feature_codes = xs;
  for (const auto& x : xs) wl.expected_class.push_back(q.predict_codes(x));
  return wl;
}

TEST(SimBackendEquivalence, VerifyResultMatchesU64) {
  const auto wide = wide_backends();
  if (wide.empty()) GTEST_SKIP() << "no wide SIMD backend on this machine";
  const QuantizedSvm q = random_svm(3, 4, 3, 4, 5);
  auto circuit = arch::build_sequential_svm(q);
  auto wl = svm_workload(
      q, random_samples(700, 4, q.input_format.max_code(), 97));
  // Corrupt a handful of expectations: the generated circuit classifies
  // correctly from any reachable state, so every backend must report the
  // same mismatch count and the same lowest-index mismatch regardless of
  // how samples pack into lanes.
  for (const std::size_t s : {std::size_t{41}, std::size_t{300},
                              std::size_t{655}}) {
    wl.expected_class[s] = (wl.expected_class[s] + 1) % 3;
  }
  VerifyOptions ref_opts;
  ref_opts.backend = Backend::kU64;
  const VerifyResult ref = verify_workload(
      circuit.module, circuit.cycles_per_inference, wl, ref_opts);
  EXPECT_EQ(ref.mismatches, 3u);
  ASSERT_TRUE(ref.first.has_value());
  EXPECT_EQ(ref.first->sample, 41u);
  for (const Backend b : wide) {
    VerifyOptions opts;
    opts.backend = b;
    const VerifyResult got = verify_workload(
        circuit.module, circuit.cycles_per_inference, wl, opts);
    EXPECT_EQ(got.samples, ref.samples);
    EXPECT_EQ(got.mismatches, ref.mismatches);
    ASSERT_TRUE(got.first.has_value());
    EXPECT_EQ(got.first->sample, ref.first->sample);
    EXPECT_EQ(got.first->predicted, ref.first->predicted);
    EXPECT_EQ(got.first->expected, ref.first->expected);
  }
}

TEST(SimBackendEquivalence, MergedActivityMatchesU64) {
  const auto wide = wide_backends();
  if (wide.empty()) GTEST_SKIP() << "no wide SIMD backend on this machine";
  const QuantizedSvm q = random_svm(3, 3, 3, 4, 23);
  auto circuit = arch::build_sequential_svm(q);
  const auto lib = cells::CellLibrary::egfet();
  const auto wl = svm_workload(
      q, random_samples(180, 3, q.input_format.max_code(), 61));
  // chunk_samples defines the lane-streams; the merged counts must be
  // invariant to how many streams ride per batch word.
  ActivityOptions ref_opts;
  ref_opts.backend = Backend::kU64;
  ref_opts.chunk_samples = 7;  // ragged: 180 = 25x7 + 5
  const sim::ActivityStats ref =
      collect_activity(circuit.module, lib, circuit.cycles_per_inference, wl,
                       wl.feature_codes.size(), ref_opts);
  for (const Backend b : wide) {
    ActivityOptions opts = ref_opts;
    opts.backend = b;
    const sim::ActivityStats got =
        collect_activity(circuit.module, lib, circuit.cycles_per_inference,
                         wl, wl.feature_codes.size(), opts);
    EXPECT_EQ(got.net_toggles, ref.net_toggles);
    EXPECT_EQ(got.net_functional, ref.net_functional);
    EXPECT_EQ(got.dff_clock_events, ref.dff_clock_events);
    EXPECT_EQ(got.cycles, ref.cycles);
  }
}

TEST(SimBackendEquivalence, FaultCampaignMatchesU64AcrossVariantBoundaries) {
  const auto wide = wide_backends();
  if (wide.empty()) GTEST_SKIP() << "no wide SIMD backend on this machine";
  const QuantizedSvm q = random_svm(3, 3, 3, 4, 71);
  auto circuit = arch::build_sequential_svm(q);
  const auto wl = svm_workload(
      q, random_samples(40, 3, q.input_format.max_code(), 13));
  // Enough variants to cross the per-pass packing boundary of every
  // backend (63 / 255 / 511 variants per pass): per-variant counts must
  // not depend on which pass a variant rode in.
  auto sets = enumerate_single_faults(circuit.module);
  if (sets.size() > 600) sets.resize(600);
  ASSERT_GT(sets.size(), 256u)
      << "module too small to cross the AVX2 variant boundary";
  FaultCampaignOptions ref_opts;
  ref_opts.backend = Backend::kU64;
  const FaultCampaignResult ref = run_fault_campaign(
      circuit.module, circuit.cycles_per_inference, wl, sets, ref_opts);
  ASSERT_EQ(ref.variants.size(), sets.size());
  EXPECT_EQ(ref.golden.misclassified, 0u);
  for (const Backend b : wide) {
    FaultCampaignOptions opts;
    opts.backend = b;
    const FaultCampaignResult got = run_fault_campaign(
        circuit.module, circuit.cycles_per_inference, wl, sets, opts);
    ASSERT_EQ(got.variants.size(), ref.variants.size());
    EXPECT_EQ(got.golden.misclassified, ref.golden.misclassified);
    EXPECT_EQ(got.golden.samples, ref.golden.samples);
    for (std::size_t i = 0; i < ref.variants.size(); ++i) {
      ASSERT_EQ(got.variants[i].misclassified, ref.variants[i].misclassified)
          << sim::backend_name(b) << " diverges on variant " << i;
      ASSERT_EQ(got.variants[i].samples, ref.variants[i].samples);
    }
  }
}

TEST(SimBackendEquivalence, ProbeReportsResolvedLaneWidth) {
  const QuantizedSvm q = random_svm(3, 2, 3, 4, 3);
  auto circuit = arch::build_sequential_svm(q);
  const auto xs = random_samples(16, 2, q.input_format.max_code(), 19);
  const BatchProbeResult r = probe_batch_backend(
      circuit.module, circuit.cycles_per_inference, xs, Backend::kAuto);
  EXPECT_EQ(r.lanes,
            sim::backend_lanes(sim::resolve_backend(Backend::kAuto)));
}

}  // namespace
}  // namespace pml::core
