// Zero-delay cycle simulator: combinational evaluation, DFF semantics,
// port access, toggle counting.

#include <gtest/gtest.h>

#include "pml/netlist/module.hpp"
#include "pml/sim/cycle_sim.hpp"

namespace pml::sim {
namespace {

using netlist::CellType;
using netlist::kConst1;
using netlist::Module;

TEST(CycleSim, CombinationalGate) {
  Module m;
  const auto p = m.add_input_port("p", 2);
  m.add_output_port("y", {m.and2(p[0], p[1])});
  CycleSimulator sim(m);
  for (int a = 0; a <= 1; ++a) {
    for (int b = 0; b <= 1; ++b) {
      sim.set_port("p", static_cast<std::uint64_t>(a | (b << 1)));
      sim.propagate();
      EXPECT_EQ(sim.port_unsigned("y"), static_cast<std::uint64_t>(a & b));
    }
  }
}

TEST(CycleSim, DeepChainEvaluatesInOneVisit) {
  Module m;
  const auto a = m.add_input_port("a", 1)[0];
  auto n = a;
  for (int i = 0; i < 100; ++i) n = m.add_gate_raw(CellType::kInv, n);
  m.add_output_port("y", {n});
  CycleSimulator sim(m);
  sim.set_net(a, true);
  sim.propagate();
  EXPECT_EQ(sim.port_unsigned("y"), 1u);  // even number of inversions
  sim.set_net(a, false);
  sim.propagate();
  EXPECT_EQ(sim.port_unsigned("y"), 0u);
}

TEST(CycleSim, ShiftRegister) {
  Module m;
  const auto d = m.add_input_port("d", 1)[0];
  const auto q1 = m.dff(d);
  const auto q2 = m.dff(q1);
  const auto q3 = m.dff(q2);
  m.add_output_port("q", {q1, q2, q3});
  CycleSimulator sim(m);
  // Shift in 1, 0, 1.
  sim.set_net(d, true);
  sim.step();
  sim.set_net(d, false);
  sim.step();
  sim.set_net(d, true);
  sim.step();
  // q1 newest: 1, q2: 0, q3: 1 -> bits LSB-first 1,0,1 = 0b101.
  EXPECT_EQ(sim.port_unsigned("q"), 0b101u);
  EXPECT_EQ(sim.cycles(), 3u);
}

TEST(CycleSim, DffInitialValueAndReset) {
  Module m;
  const auto d = m.add_input_port("d", 1)[0];
  const auto q = m.dff(d, /*init=*/true);
  m.add_output_port("q", {q});
  CycleSimulator sim(m);
  EXPECT_EQ(sim.port_unsigned("q"), 1u);
  sim.set_net(d, false);
  sim.step();
  EXPECT_EQ(sim.port_unsigned("q"), 0u);
  sim.reset();
  EXPECT_EQ(sim.port_unsigned("q"), 1u);
  EXPECT_EQ(sim.cycles(), 0u);
}

TEST(CycleSim, ToggleFlopDividesByTwo) {
  Module m;
  const auto d = m.new_net();
  const auto q = m.dff(d);
  m.drive_net(d, m.inv(q));
  m.add_output_port("q", {q});
  CycleSimulator sim(m);
  std::uint64_t prev = 0;
  for (int i = 0; i < 8; ++i) {
    sim.step();
    const auto v = sim.port_unsigned("q");
    EXPECT_NE(v, prev) << "must toggle every cycle";
    prev = v;
  }
}

TEST(CycleSim, SignedPortRead) {
  Module m;
  const auto p = m.add_input_port("p", 4);
  m.add_output_port("y", {p[0], p[1], p[2], p[3]});
  CycleSimulator sim(m);
  sim.set_port("p", 0b1111);
  sim.propagate();
  EXPECT_EQ(sim.port_signed("y"), -1);
  sim.set_port("p", 0b0111);
  sim.propagate();
  EXPECT_EQ(sim.port_signed("y"), 7);
  sim.set_port("p", 0b1000);
  sim.propagate();
  EXPECT_EQ(sim.port_signed("y"), -8);
}

TEST(CycleSim, ToggleCountsFunctionalOnly) {
  Module m;
  const auto p = m.add_input_port("p", 1);
  const auto y = m.inv(p[0]);
  m.add_output_port("y", {y});
  CycleSimulator sim(m);
  // Reset settles the netlist (p=0 -> y=1) without counting; the first real
  // stimulus flips y once, the second flips it back, the third is idle.
  sim.set_net(p[0], true);
  sim.propagate();
  sim.set_net(p[0], false);
  sim.propagate();
  sim.set_net(p[0], false);
  sim.propagate();  // no change
  EXPECT_EQ(sim.toggles()[y], 2u);
}

TEST(CycleSim, UnknownPortThrows) {
  Module m;
  (void)m.add_input_port("p", 1);
  CycleSimulator sim(m);
  EXPECT_THROW(sim.set_port("nope", 0), std::invalid_argument);
  EXPECT_THROW((void)sim.port_unsigned("nope"), std::invalid_argument);
}

}  // namespace
}  // namespace pml::sim
