// Bus multiplexers and bespoke MUX storage.

#include <gtest/gtest.h>

#include "pml/netlist/module.hpp"
#include "pml/synth/mux.hpp"
#include "sim_test_util.hpp"

namespace pml::synth {
namespace {

using netlist::CellType;
using netlist::Module;
using testutil::Harness;

TEST(Mux2Bus, SelectsAndAligns) {
  Module m;
  const Bus d0{m.add_input_port("d0", 3)};
  const Bus d1{m.add_input_port("d1", 5)};
  const auto s = m.add_input_port("s", 1)[0];
  const Bus out = mux2_bus(m, d0, d1, s, /*signed_align=*/true);
  EXPECT_EQ(out.width(), 5);
  Harness h(m);
  h.set("d0", 0b101);  // -3 signed in 3 bits
  h.set("d1", 0b01010);
  h.set("s", 0);
  h.run();
  EXPECT_EQ(h.signed_of(out), -3) << "sign-extended select of d0";
  h.set("s", 1);
  h.run();
  EXPECT_EQ(h.signed_of(out), 10);
}

class MuxNSize : public ::testing::TestWithParam<int> {};

TEST_P(MuxNSize, SelectsEachOption) {
  const int n = GetParam();
  int sel_bits = 1;
  while ((1 << sel_bits) < n) ++sel_bits;
  Module m;
  std::vector<Bus> options;
  for (int i = 0; i < n; ++i) {
    options.push_back(Bus{m.add_input_port("o" + std::to_string(i), 4)});
  }
  const Bus sel{m.add_input_port("s", sel_bits)};
  const Bus out = mux_n(m, options, sel, /*signed_align=*/false);
  Harness h(m);
  for (int i = 0; i < n; ++i) {
    h.set("o" + std::to_string(i), static_cast<std::uint64_t>(i + 1));
  }
  for (int i = 0; i < n; ++i) {
    h.set("s", static_cast<std::uint64_t>(i));
    h.run();
    EXPECT_EQ(h.unsigned_of(out), static_cast<std::uint64_t>(i + 1));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MuxNSize, ::testing::Values(2, 3, 4, 5, 7, 8, 10));

TEST(MuxN, RejectsNarrowSelect) {
  Module m;
  std::vector<Bus> options(5, constant_bus(1, 2));
  const Bus sel{m.add_input_port("s", 2)};
  EXPECT_THROW((void)mux_n(m, options, sel), std::invalid_argument);
  EXPECT_THROW((void)mux_n(m, {}, sel), std::invalid_argument);
}

class StorageShape : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(StorageShape, ReadsBackEveryWord) {
  const auto [words, width] = GetParam();
  int sel_bits = 1;
  while ((1 << sel_bits) < words) ++sel_bits;
  // Deterministic signed contents.
  std::vector<std::int64_t> contents;
  const std::int64_t lo = -(std::int64_t{1} << (width - 1));
  const std::int64_t hi = (std::int64_t{1} << (width - 1)) - 1;
  for (int i = 0; i < words; ++i) {
    contents.push_back(lo + (7919 * i) % (hi - lo + 1));
  }
  Module m;
  const Bus sel{m.add_input_port("s", sel_bits)};
  const Bus out = mux_storage(m, contents, width, sel);
  EXPECT_EQ(out.width(), width);
  Harness h(m);
  for (int i = 0; i < words; ++i) {
    h.set("s", static_cast<std::uint64_t>(i));
    h.run();
    EXPECT_EQ(h.signed_of(out), contents[static_cast<std::size_t>(i)])
        << words << "x" << width << " word " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, StorageShape,
                         ::testing::Values(std::make_pair(2, 4),
                                           std::make_pair(3, 5),
                                           std::make_pair(4, 6),
                                           std::make_pair(6, 6),
                                           std::make_pair(10, 7),
                                           std::make_pair(45, 8)));

TEST(MuxStorage, InteriorLevelsArePhysicalMuxes) {
  Module m;
  const Bus sel{m.add_input_port("s", 2)};
  // 4 words x 4 bits: leaf level folds, interior level must be 4 real MUX2.
  (void)mux_storage(m, {3, -2, 5, -8}, 4, sel);
  const auto stats = m.stats();
  EXPECT_EQ(stats.counts_by_type[static_cast<int>(CellType::kMux2)], 4u);
}

TEST(MuxStorage, IdenticalWordsCollapse) {
  Module m;
  const Bus sel{m.add_input_port("s", 1)};
  const Bus out = mux_storage(m, {5, 5}, 4, sel);
  EXPECT_TRUE(m.cells().empty()) << "equal words need no logic";
  Harness h(m);
  h.run();
  EXPECT_EQ(h.signed_of(out), 5);
}

TEST(MuxStorage, SingleWordIsConstant) {
  Module m;
  const Bus sel{m.add_input_port("s", 1)};
  const Bus out = mux_storage(m, {-3}, 4, sel);
  EXPECT_TRUE(m.cells().empty());
  Harness h(m);
  h.set("s", 0);
  h.run();
  EXPECT_EQ(h.signed_of(out), -3);
  h.set("s", 1);  // don't-care select replicates the last word
  h.run();
  EXPECT_EQ(h.signed_of(out), -3);
}

}  // namespace
}  // namespace pml::synth
