// MLP training: convergence, determinism, shapes.

#include <gtest/gtest.h>

#include "pml/ml/metrics.hpp"
#include "pml/ml/mlp.hpp"
#include "pml/ml/rng.hpp"
#include "pml/ml/synthetic_datasets.hpp"

namespace pml::ml {
namespace {

TEST(Mlp, LearnsNonLinearBoundary) {
  // XOR-style four-cluster data: unsolvable by a linear model.
  Rng rng(5);
  Dataset d;
  d.num_features = 2;
  d.num_classes = 2;
  for (int i = 0; i < 600; ++i) {
    const int qa = i % 2, qb = (i / 2) % 2;
    d.X.push_back({rng.normal(qa ? 0.75 : 0.25, 0.06),
                   rng.normal(qb ? 0.75 : 0.25, 0.06)});
    d.y.push_back(qa ^ qb);
  }
  MlpTrainOptions opts;
  opts.hidden = 8;
  opts.epochs = 120;
  const MlpModel model = train_mlp(d, opts);
  EXPECT_GT(accuracy(model.predict_all(d.X), d.y), 0.95);
}

TEST(Mlp, ShapesMatchOptions) {
  const Dataset d = make_uci_like(UciProfile::kCardio);
  MlpTrainOptions opts;
  opts.hidden = 6;
  opts.epochs = 2;
  const MlpModel model = train_mlp(d, opts);
  EXPECT_EQ(model.num_inputs, 21);
  EXPECT_EQ(model.num_hidden, 6);
  EXPECT_EQ(model.num_outputs, 3);
  EXPECT_EQ(model.w1.size(), 6u);
  EXPECT_EQ(model.w1[0].size(), 21u);
  EXPECT_EQ(model.w2.size(), 3u);
  EXPECT_EQ(model.w2[0].size(), 6u);
}

TEST(Mlp, DeterministicForSeed) {
  const Dataset d = make_uci_like(UciProfile::kRedWine);
  MlpTrainOptions opts;
  opts.epochs = 3;
  const MlpModel a = train_mlp(d, opts);
  const MlpModel b = train_mlp(d, opts);
  EXPECT_EQ(a.w1, b.w1);
  EXPECT_EQ(a.b2, b.b2);
  opts.seed = 2;
  const MlpModel c = train_mlp(d, opts);
  EXPECT_NE(a.w1, c.w1);
}

TEST(Mlp, HiddenActivationsAreNonNegative) {
  const Dataset d = make_uci_like(UciProfile::kWhiteWine);
  MlpTrainOptions opts;
  opts.epochs = 3;
  const MlpModel model = train_mlp(d, opts);
  for (std::size_t i = 0; i < 50; ++i) {
    for (const double h : model.hidden_activations(d.X[i])) {
      EXPECT_GE(h, 0.0);
    }
  }
}

TEST(Mlp, PredictIsArgmaxOfLogits) {
  const Dataset d = make_uci_like(UciProfile::kCardio);
  MlpTrainOptions opts;
  opts.epochs = 2;
  const MlpModel model = train_mlp(d, opts);
  for (std::size_t i = 0; i < 20; ++i) {
    const auto z = model.logits(d.X[i]);
    int best = 0;
    for (int k = 1; k < model.num_outputs; ++k) {
      if (z[static_cast<std::size_t>(k)] > z[static_cast<std::size_t>(best)]) {
        best = k;
      }
    }
    EXPECT_EQ(model.predict(d.X[i]), best);
  }
}

TEST(Mlp, RejectsEmptyData) {
  Dataset empty;
  EXPECT_THROW((void)train_mlp(empty, MlpTrainOptions{}), std::invalid_argument);
}

TEST(Mlp, BeatsRandomOnAllProfiles) {
  for (const auto& info : all_profiles()) {
    const Dataset d = make_uci_like(info.profile);
    const Split s = stratified_split(d, 0.8, 41);
    MlpTrainOptions opts;
    opts.hidden = 6;
    opts.epochs = 15;
    const MlpModel model = train_mlp(s.train, opts);
    const double acc = accuracy(model.predict_all(s.test.X), s.test.y);
    EXPECT_GT(acc, 1.5 / info.num_classes)
        << info.name << " accuracy " << acc;
  }
}

}  // namespace
}  // namespace pml::ml
