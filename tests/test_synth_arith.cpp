// Datapath arithmetic: exhaustive correctness of adders, subtractors,
// comparators, reductions over small widths (property-style sweeps).

#include <gtest/gtest.h>

#include "pml/netlist/module.hpp"
#include "pml/sim/levelize.hpp"
#include "pml/synth/arith.hpp"
#include "sim_test_util.hpp"

namespace pml::synth {
namespace {

using netlist::Module;
using testutil::Harness;

std::int64_t sext_val(std::uint64_t raw, int bits) {
  const std::int64_t v = static_cast<std::int64_t>(raw);
  return (raw & (1ull << (bits - 1))) ? v - (std::int64_t{1} << bits) : v;
}

class WidthPair : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(WidthPair, AddSignedExhaustive) {
  const auto [wa, wb] = GetParam();
  Module m;
  const Bus a{m.add_input_port("a", wa)};
  const Bus b{m.add_input_port("b", wb)};
  const Bus sum = add_signed(m, a, b);
  EXPECT_EQ(sum.width(), std::max(wa, wb) + 1);
  Harness h(m);
  for (std::uint64_t ra = 0; ra < (1ull << wa); ++ra) {
    for (std::uint64_t rb = 0; rb < (1ull << wb); ++rb) {
      h.set("a", ra);
      h.set("b", rb);
      h.run();
      EXPECT_EQ(h.signed_of(sum), sext_val(ra, wa) + sext_val(rb, wb))
          << wa << "x" << wb << ": " << ra << " + " << rb;
    }
  }
}

TEST_P(WidthPair, SubSignedExhaustive) {
  const auto [wa, wb] = GetParam();
  Module m;
  const Bus a{m.add_input_port("a", wa)};
  const Bus b{m.add_input_port("b", wb)};
  const Bus diff = sub_signed(m, a, b);
  Harness h(m);
  for (std::uint64_t ra = 0; ra < (1ull << wa); ++ra) {
    for (std::uint64_t rb = 0; rb < (1ull << wb); ++rb) {
      h.set("a", ra);
      h.set("b", rb);
      h.run();
      EXPECT_EQ(h.signed_of(diff), sext_val(ra, wa) - sext_val(rb, wb));
    }
  }
}

TEST_P(WidthPair, AddUnsignedExhaustive) {
  const auto [wa, wb] = GetParam();
  Module m;
  const Bus a{m.add_input_port("a", wa)};
  const Bus b{m.add_input_port("b", wb)};
  const Bus sum = add_unsigned(m, a, b);
  Harness h(m);
  for (std::uint64_t ra = 0; ra < (1ull << wa); ++ra) {
    for (std::uint64_t rb = 0; rb < (1ull << wb); ++rb) {
      h.set("a", ra);
      h.set("b", rb);
      h.run();
      EXPECT_EQ(h.unsigned_of(sum), ra + rb);
    }
  }
}

TEST_P(WidthPair, ComparatorsExhaustive) {
  const auto [wa, wb] = GetParam();
  Module m;
  const Bus a{m.add_input_port("a", wa)};
  const Bus b{m.add_input_port("b", wb)};
  const auto gt = greater_signed(m, a, b);
  const auto ge = greater_equal_signed(m, a, b);
  const auto gtu = greater_unsigned(m, a, b);
  const auto eq = equal_unsigned(m, a, b);
  Harness h(m);
  for (std::uint64_t ra = 0; ra < (1ull << wa); ++ra) {
    for (std::uint64_t rb = 0; rb < (1ull << wb); ++rb) {
      h.set("a", ra);
      h.set("b", rb);
      h.run();
      const std::int64_t sa = sext_val(ra, wa), sb = sext_val(rb, wb);
      EXPECT_EQ(h.net(gt), sa > sb);
      EXPECT_EQ(h.net(ge), sa >= sb);
      EXPECT_EQ(h.net(gtu), ra > rb);
      EXPECT_EQ(h.net(eq), ra == rb);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, WidthPair,
                         ::testing::Values(std::make_pair(1, 1),
                                           std::make_pair(2, 2),
                                           std::make_pair(3, 3),
                                           std::make_pair(4, 4),
                                           std::make_pair(2, 5),
                                           std::make_pair(5, 2),
                                           std::make_pair(6, 6)));

TEST(Negate, Exhaustive) {
  Module m;
  const Bus a{m.add_input_port("a", 5)};
  const Bus n = negate(m, a);
  Harness h(m);
  for (std::uint64_t ra = 0; ra < 32; ++ra) {
    h.set("a", ra);
    h.run();
    EXPECT_EQ(h.signed_of(n), -sext_val(ra, 5));
  }
}

class TreeSize : public ::testing::TestWithParam<int> {};

TEST_P(TreeSize, AdderTreeMatchesSum) {
  const int k = GetParam();
  Module m;
  std::vector<Bus> ops;
  for (int i = 0; i < k; ++i) {
    ops.push_back(Bus{m.add_input_port("x" + std::to_string(i), 4)});
  }
  const Bus sum = adder_tree_signed(m, ops);
  Harness h(m);
  // Pseudo-random operand patterns.
  std::uint64_t s = 0x1234567 + static_cast<std::uint64_t>(k);
  for (int trial = 0; trial < 40; ++trial) {
    std::int64_t expected = 0;
    for (int i = 0; i < k; ++i) {
      s = s * 6364136223846793005ull + 1442695040888963407ull;
      const std::uint64_t r = (s >> 33) & 0xF;
      h.set("x" + std::to_string(i), r);
      expected += sext_val(r, 4);
    }
    h.run();
    EXPECT_EQ(h.signed_of(sum), expected) << "k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(OperandCounts, TreeSize,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 32));

TEST(AdderChain, MatchesTreeFunctionally) {
  Module mt, mc;
  std::vector<Bus> ops_t, ops_c;
  for (int i = 0; i < 7; ++i) {
    ops_t.push_back(Bus{mt.add_input_port("x" + std::to_string(i), 4)});
    ops_c.push_back(Bus{mc.add_input_port("x" + std::to_string(i), 4)});
  }
  const Bus sum_t = adder_tree_signed(mt, ops_t);
  const Bus sum_c = adder_chain_signed(mc, ops_c);
  Harness ht(mt), hc(mc);
  std::uint64_t s = 99;
  for (int trial = 0; trial < 50; ++trial) {
    std::int64_t expected = 0;
    for (int i = 0; i < 7; ++i) {
      s = s * 6364136223846793005ull + 1442695040888963407ull;
      const std::uint64_t r = (s >> 33) & 0xF;
      ht.set("x" + std::to_string(i), r);
      hc.set("x" + std::to_string(i), r);
      expected += sext_val(r, 4);
    }
    ht.run();
    hc.run();
    EXPECT_EQ(ht.signed_of(sum_t), expected);
    EXPECT_EQ(hc.signed_of(sum_c), expected);
  }
}

TEST(AdderChain, DeeperThanTree) {
  // The chain's linear depth vs the tree's logarithmic depth is the
  // structural reason the parallel baselines clock slower (see
  // arch::Accumulator).
  auto depth_of = [](bool chain) {
    Module m;
    std::vector<Bus> ops;
    for (int i = 0; i < 16; ++i) {
      ops.push_back(Bus{m.add_input_port("x" + std::to_string(i), 4)});
    }
    const Bus sum =
        chain ? adder_chain_signed(m, ops) : adder_tree_signed(m, ops);
    (void)sum;
    sim::Levelization lv = sim::levelize(m);
    return lv.max_depth;
  };
  EXPECT_GT(depth_of(true), 2 * depth_of(false));
}

TEST(AdderTree, EmptyIsZero) {
  Module m;
  const Bus sum = adder_tree_signed(m, {});
  Harness h(m);
  h.run();
  EXPECT_EQ(h.signed_of(sum), 0);
}

TEST(TruncatedAdd, MatchesFloorModel) {
  for (int drop : {1, 2, 3, 5}) {
    Module m;
    const Bus a{m.add_input_port("a", 5)};
    const Bus b{m.add_input_port("b", 5)};
    const Bus sum = add_signed_truncated(m, a, b, drop);
    Harness h(m);
    for (std::uint64_t ra = 0; ra < 32; ++ra) {
      for (std::uint64_t rb = 0; rb < 32; ++rb) {
        h.set("a", ra);
        h.set("b", rb);
        h.run();
        // Model: (floor(a/2^d) + floor(b/2^d)) * 2^d  (arithmetic shift).
        const std::int64_t expected =
            ((sext_val(ra, 5) >> drop) + (sext_val(rb, 5) >> drop)) << drop;
        EXPECT_EQ(h.signed_of(sum), expected)
            << "drop=" << drop << " a=" << sext_val(ra, 5)
            << " b=" << sext_val(rb, 5);
      }
    }
  }
}

TEST(Reduce, OrAndExhaustive) {
  Module m;
  const Bus a{m.add_input_port("a", 5)};
  const auto any = reduce_or(m, a);
  const auto all = reduce_and(m, a);
  Harness h(m);
  for (std::uint64_t ra = 0; ra < 32; ++ra) {
    h.set("a", ra);
    h.run();
    EXPECT_EQ(h.net(any), ra != 0);
    EXPECT_EQ(h.net(all), ra == 31);
  }
}

TEST(Reduce, EmptyBusDefaults) {
  Module m;
  EXPECT_EQ(reduce_or(m, Bus{}), netlist::kConst0);
  EXPECT_EQ(reduce_and(m, Bus{}), netlist::kConst1);
}

TEST(BusOps, SextZextShiftSlice) {
  Module m;
  const Bus a{m.add_input_port("a", 4)};
  const Bus z = zext(a, 6);
  const Bus s = sext(a, 6);
  const Bus sh = shl(a, 2);
  const Bus dr = drop_lsbs(a, 2);
  const Bus sl = slice(a, 1, 2);
  Harness h(m);
  h.set("a", 0b1010);
  h.run();
  EXPECT_EQ(h.unsigned_of(z), 0b001010u);
  EXPECT_EQ(h.signed_of(s), sext_val(0b1010, 4));
  EXPECT_EQ(h.unsigned_of(sh), 0b101000u);
  EXPECT_EQ(h.signed_of(dr), -2);  // 1010 >> 2 arithmetic = 0b10 (-2)
  EXPECT_EQ(h.unsigned_of(sl), 0b01u);
  EXPECT_THROW((void)slice(a, 3, 2), std::invalid_argument);
  EXPECT_THROW((void)drop_lsbs(a, 4), std::invalid_argument);
}

}  // namespace
}  // namespace pml::synth
