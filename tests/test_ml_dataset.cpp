// Dataset handling: splits, stratification, scaling, determinism.

#include <gtest/gtest.h>

#include "pml/ml/dataset.hpp"
#include "pml/ml/rng.hpp"
#include "pml/ml/scaler.hpp"
#include "pml/ml/synthetic_datasets.hpp"

namespace pml::ml {
namespace {

Dataset tiny_dataset(std::size_t n, int classes) {
  Dataset d;
  d.name = "tiny";
  d.num_features = 2;
  d.num_classes = classes;
  Rng rng(99);
  for (std::size_t i = 0; i < n; ++i) {
    d.X.push_back({rng.uniform(), rng.uniform() * 4 - 2});
    d.y.push_back(static_cast<int>(i % static_cast<std::size_t>(classes)));
  }
  return d;
}

TEST(Split, ProportionsRespected) {
  const Dataset d = tiny_dataset(100, 2);
  const Split s = train_test_split(d, 0.8, 1);
  EXPECT_EQ(s.train.size(), 80u);
  EXPECT_EQ(s.test.size(), 20u);
  EXPECT_EQ(s.train.num_features, 2);
  EXPECT_EQ(s.test.num_classes, 2);
}

TEST(Split, DisjointAndComplete) {
  const Dataset d = tiny_dataset(50, 2);
  const Split s = train_test_split(d, 0.6, 7);
  EXPECT_EQ(s.train.size() + s.test.size(), d.size());
  // Feature vectors are unique in tiny_dataset, so membership is checkable.
  for (const auto& row : s.test.X) {
    EXPECT_EQ(std::count(s.train.X.begin(), s.train.X.end(), row), 0);
  }
}

TEST(Split, DeterministicPerSeed) {
  const Dataset d = tiny_dataset(60, 3);
  const Split a = train_test_split(d, 0.8, 5);
  const Split b = train_test_split(d, 0.8, 5);
  const Split c = train_test_split(d, 0.8, 6);
  EXPECT_EQ(a.train.X, b.train.X);
  EXPECT_NE(a.train.X, c.train.X);
}

TEST(Split, RejectsBadFraction) {
  const Dataset d = tiny_dataset(10, 2);
  EXPECT_THROW((void)train_test_split(d, 0.0, 1), std::invalid_argument);
  EXPECT_THROW((void)train_test_split(d, 1.0, 1), std::invalid_argument);
  EXPECT_THROW((void)stratified_split(d, -0.5, 1), std::invalid_argument);
}

TEST(StratifiedSplit, PreservesClassBalance) {
  Dataset d = tiny_dataset(200, 2);
  // Make it imbalanced: 180 of class 0, 20 of class 1.
  for (std::size_t i = 0; i < d.size(); ++i) d.y[i] = i < 180 ? 0 : 1;
  const Split s = stratified_split(d, 0.8, 3);
  const auto train_counts = s.train.class_counts();
  const auto test_counts = s.test.class_counts();
  EXPECT_EQ(train_counts[0], 144u);
  EXPECT_EQ(train_counts[1], 16u);
  EXPECT_EQ(test_counts[0], 36u);
  EXPECT_EQ(test_counts[1], 4u);
}

TEST(ClassCounts, TalliesLabels) {
  const Dataset d = tiny_dataset(9, 3);
  const auto counts = d.class_counts();
  EXPECT_EQ(counts, (std::vector<std::size_t>{3, 3, 3}));
}

TEST(Scaler, MapsTrainRangeToUnitInterval) {
  Dataset d;
  d.num_features = 2;
  d.num_classes = 2;
  d.X = {{0.0, -10.0}, {5.0, 10.0}, {2.5, 0.0}};
  d.y = {0, 1, 0};
  MinMaxScaler scaler;
  scaler.fit(d);
  const Dataset t = scaler.transform(d);
  EXPECT_DOUBLE_EQ(t.X[0][0], 0.0);
  EXPECT_DOUBLE_EQ(t.X[1][0], 1.0);
  EXPECT_DOUBLE_EQ(t.X[2][0], 0.5);
  EXPECT_DOUBLE_EQ(t.X[2][1], 0.5);
}

TEST(Scaler, ClampsOutOfRangeTestValues) {
  Dataset d;
  d.num_features = 1;
  d.num_classes = 2;
  d.X = {{0.0}, {1.0}};
  d.y = {0, 1};
  MinMaxScaler scaler;
  scaler.fit(d);
  std::vector<double> sample{5.0};
  scaler.transform(sample);
  EXPECT_DOUBLE_EQ(sample[0], 1.0);
  sample = {-5.0};
  scaler.transform(sample);
  EXPECT_DOUBLE_EQ(sample[0], 0.0);
}

TEST(Scaler, ConstantFeatureMapsToZero) {
  Dataset d;
  d.num_features = 1;
  d.num_classes = 2;
  d.X = {{3.0}, {3.0}};
  d.y = {0, 1};
  MinMaxScaler scaler;
  scaler.fit(d);
  std::vector<double> sample{3.0};
  scaler.transform(sample);
  EXPECT_DOUBLE_EQ(sample[0], 0.0);
}

TEST(Scaler, RejectsMismatchedWidth) {
  Dataset d = tiny_dataset(5, 2);
  MinMaxScaler scaler;
  scaler.fit(d);
  std::vector<double> bad{1.0, 2.0, 3.0};
  EXPECT_THROW(scaler.transform(bad), std::invalid_argument);
  Dataset empty;
  EXPECT_THROW(scaler.fit(empty), std::invalid_argument);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng rng(11);
  double sum = 0.0, sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sum2 += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

}  // namespace
}  // namespace pml::ml
