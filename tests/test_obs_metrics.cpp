// pml::obs metrics registry: exact counter arithmetic through the macro
// path, snapshot/diff semantics (clamping, after-only metrics), histogram
// bucketing, and the determinism contract — a fixed simulation workload
// produces the identical counter delta on every run, because counters
// count work items, never time.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "pml/arch/sequential_svm.hpp"
#include "pml/cells/library.hpp"
#include "pml/core/flow.hpp"
#include "pml/ml/multiclass.hpp"
#include "pml/ml/scaler.hpp"
#include "pml/ml/synthetic_datasets.hpp"
#include "pml/obs/metrics.hpp"
#include "pml/quant/svm_quant.hpp"

namespace pml::obs {
namespace {

TEST(ObsMetrics, CounterMacroCountsExactly) {
  const MetricsSnapshot before = snapshot_metrics();
  for (int i = 0; i < 1000; ++i) PML_OBS_COUNT("test.metrics.unit", 1);
  PML_OBS_COUNT("test.metrics.unit", 42);
  const MetricsSnapshot delta = diff_metrics(before, snapshot_metrics());
  EXPECT_EQ(delta.counter_value("test.metrics.unit"), 1042u);
  EXPECT_EQ(delta.counter_value("test.metrics.never_touched"), 0u);
}

TEST(ObsMetrics, CountersAreSharedAcrossThreads) {
  const MetricsSnapshot before = snapshot_metrics();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) {
        PML_OBS_COUNT("test.metrics.mt", 1);
      }
    });
  }
  for (auto& th : pool) th.join();
  const MetricsSnapshot delta = diff_metrics(before, snapshot_metrics());
  EXPECT_EQ(delta.counter_value("test.metrics.mt"),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(ObsMetrics, DiffClampsAndKeepsAfterOnlyMetrics) {
  PML_OBS_COUNT("test.metrics.preexisting", 5);
  MetricsSnapshot before = snapshot_metrics();
  // Manufacture before > after without resetting the real registry (other
  // tests in this binary rely on monotonicity): edit the copy.
  for (auto& [name, v] : before.counters) {
    if (name == "test.metrics.preexisting") v += 1000;
  }
  PML_OBS_COUNT("test.metrics.after_only_probe", 7);
  const MetricsSnapshot delta = diff_metrics(before, snapshot_metrics());
  EXPECT_EQ(delta.counter_value("test.metrics.preexisting"), 0u)
      << "negative deltas must clamp to zero";
  EXPECT_EQ(delta.counter_value("test.metrics.after_only_probe"), 7u)
      << "metrics first seen in `after` keep their absolute value";
}

TEST(ObsMetrics, DurationHistogramBucketsByLog2Microseconds) {
  DurationHistogram& h = duration("test.metrics.hist");
  const std::uint64_t count0 = h.count();
  h.record_ns(500);          // < 1 us -> bucket 0
  h.record_ns(1'000);        // 1 us   -> bucket 0
  h.record_ns(3'000);        // 3 us   -> bucket 1
  h.record_ns(1'000'000);    // 1 ms   -> bucket 9 (log2(1000) ~ 9.97)
  EXPECT_EQ(h.count() - count0, 4u);
  EXPECT_GE(h.bucket(0), 2u);
  EXPECT_GE(h.bucket(1), 1u);
  EXPECT_GE(h.bucket(9), 1u);

  PML_OBS_TIMED("test.metrics.timed_scope");
  // The ScopedTimer records at scope exit; just ensure it compiles and
  // the histogram is registered.
  const MetricsSnapshot snap = snapshot_metrics();
  bool found = false;
  for (const auto& d : snap.durations) {
    found = found || d.name == "test.metrics.timed_scope";
  }
  EXPECT_TRUE(found);
}

TEST(ObsMetrics, SnapshotIsSortedByName) {
  PML_OBS_COUNT("test.metrics.zzz", 1);
  PML_OBS_COUNT("test.metrics.aaa", 1);
  const MetricsSnapshot snap = snapshot_metrics();
  for (std::size_t i = 1; i < snap.counters.size(); ++i) {
    EXPECT_LT(snap.counters[i - 1].first, snap.counters[i].first);
  }
}

// --- determinism over a real workload ---------------------------------------

/// One full sequential-SVM design evaluation (Cardio, fixed seeds) and the
/// counter delta it produces.
MetricsSnapshot run_fixed_workload() {
  const ml::Dataset raw = ml::make_uci_like(ml::UciProfile::kCardio);
  ml::Split split = ml::stratified_split(raw, 0.8, 99);
  ml::MinMaxScaler scaler;
  scaler.fit(split.train);
  const ml::Dataset train = scaler.transform(split.train);
  const ml::Dataset test = scaler.transform(split.test);
  ml::MulticlassTrainOptions topts;
  topts.base.seed = 7;
  const auto model = ml::train_one_vs_rest(train, topts);
  const auto q =
      quant::quantize_svm(model, /*input_bits=*/4, /*weight_bits=*/5);
  const auto circuit = arch::build_sequential_svm(q);
  const core::CircuitWorkload wl = core::make_svm_workload(q, test);
  core::EvaluateOptions eopts;
  eopts.power_samples = 16;
  eopts.verify.num_threads = 2;
  eopts.power_threads = 2;

  const MetricsSnapshot before = snapshot_metrics();
  const auto rep =
      core::evaluate_circuit(circuit.module, circuit.cycles_per_inference,
                             cells::CellLibrary::egfet(), wl, eopts);
  EXPECT_TRUE(rep.verified);
  return diff_metrics(before, snapshot_metrics());
}

TEST(ObsMetrics, FixedWorkloadCounterDeltasAreDeterministic) {
  const MetricsSnapshot first = run_fixed_workload();
  const MetricsSnapshot second = run_fixed_workload();

  // The instrumented subsystems must have actually counted something.
  EXPECT_GT(first.counter_value("core.evaluations"), 0u);
  EXPECT_GT(first.counter_value("sim.batch.lane_words"), 0u);
  EXPECT_GT(first.counter_value("sim.batch.batches"), 0u);
  EXPECT_GT(first.counter_value("sim.batch_event.lane_words"), 0u);
  // (opt.cost_probes stays zero here: the default area flow never consults
  // the cost model — only the cost-driven recipes probe it.)
  EXPECT_GT(first.counter_value("opt.pass.applications"), 0u);

  // Work-item counters are independent of scheduling, thread interleaving
  // and wall time: identical workload, identical deltas.
  ASSERT_EQ(first.counters.size(), second.counters.size());
  for (std::size_t i = 0; i < first.counters.size(); ++i) {
    EXPECT_EQ(first.counters[i].first, second.counters[i].first);
    EXPECT_EQ(first.counters[i].second, second.counters[i].second)
        << "counter " << first.counters[i].first
        << " is not deterministic for a fixed workload";
  }
}

}  // namespace
}  // namespace pml::obs
