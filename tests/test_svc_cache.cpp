// Cache-key digest contract of svc::SweepService: keys are content hashes
// — every result-relevant difference moves the key, every cosmetic or
// result-irrelevant one does not — and a cache hit returns a report
// field-for-field identical to a fresh evaluation.

#include <gtest/gtest.h>

#include <memory>

#include "pml/arch/sequential_svm.hpp"
#include "pml/core/evaluate.hpp"
#include "pml/quant/svm_quant.hpp"
#include "pml/svc/sweep_service.hpp"

namespace pml::svc {
namespace {

quant::QuantizedSvm tiny_model() {
  quant::QuantizedSvm q;
  q.strategy = ml::MulticlassStrategy::kOneVsRest;
  q.num_classes = 3;
  q.input_format = quant::input_format(3);
  q.weight_format =
      fixed::FixedFormat{.total_bits = 4, .frac_bits = 3, .is_signed = true};
  q.classifiers = {quant::QuantizedClassifier{{3, -2}, 1},
                   quant::QuantizedClassifier{{-1, 4}, 0},
                   quant::QuantizedClassifier{{2, 2}, -3}};
  return q;
}

std::shared_ptr<const core::CircuitWorkload> tiny_workload(
    const quant::QuantizedSvm& q) {
  auto wl = std::make_shared<core::CircuitWorkload>();
  for (std::int64_t a = 0; a <= 7; ++a) {
    for (std::int64_t b = 0; b <= 7; ++b) {
      wl->feature_codes.push_back({a, b});
      wl->expected_class.push_back(q.predict_codes({a, b}));
    }
  }
  return wl;
}

SweepRequest tiny_request() {
  const auto q = tiny_model();
  auto circuit = arch::build_sequential_svm(q);
  SweepRequest req;
  req.module =
      std::make_shared<const netlist::Module>(std::move(circuit.module));
  req.cycles_per_inference = circuit.cycles_per_inference;
  req.workload = tiny_workload(q);
  return req;
}

/// A tiny hand-built two-gate module; the knobs select the structural
/// variations the digest must distinguish.
std::shared_ptr<const netlist::Module> two_gate_module(
    const std::string& name, bool swap_creation_order, bool use_or) {
  auto m = std::make_shared<netlist::Module>(name);
  const auto a = m->add_input_port("x0", 1);
  const auto b = m->add_input_port("x1", 1);
  netlist::NetId first, second;
  if (!swap_creation_order) {
    first = use_or ? m->or2(a[0], b[0]) : m->and2(a[0], b[0]);
    second = m->xor2(a[0], b[0]);
  } else {
    second = m->xor2(a[0], b[0]);
    first = use_or ? m->or2(a[0], b[0]) : m->and2(a[0], b[0]);
  }
  m->add_output_port("class", {first, second});
  return m;
}

SweepRequest raw_request(std::shared_ptr<const netlist::Module> module) {
  SweepRequest req;
  req.module = std::move(module);
  req.cycles_per_inference = 1;
  auto wl = std::make_shared<core::CircuitWorkload>();
  wl->feature_codes.push_back({0, 1});
  wl->expected_class.push_back(0);
  req.workload = std::move(wl);
  return req;
}

TEST(SvcCacheKey, IdenticalRequestsDigestIdentically) {
  const auto r1 = tiny_request();
  const auto r2 = tiny_request();  // independently rebuilt, same content
  EXPECT_EQ(SweepService::cache_key(r1), SweepService::cache_key(r2));
}

TEST(SvcCacheKey, ModuleNameIsCosmetic) {
  const auto k1 = SweepService::cache_key(
      raw_request(two_gate_module("top", false, false)));
  const auto k2 = SweepService::cache_key(
      raw_request(two_gate_module("renamed", false, false)));
  EXPECT_EQ(k1, k2);
}

TEST(SvcCacheKey, SingleGateChangesKey) {
  const auto k_and = SweepService::cache_key(
      raw_request(two_gate_module("top", false, false)));
  const auto k_or = SweepService::cache_key(
      raw_request(two_gate_module("top", false, true)));
  EXPECT_NE(k_and, k_or);
}

TEST(SvcCacheKey, NetOrderChangesKey) {
  // Same gates, created in a different order: the nets they drive get
  // different indices, so the structure (and the key) differs.
  const auto k1 = SweepService::cache_key(
      raw_request(two_gate_module("top", false, false)));
  const auto k2 = SweepService::cache_key(
      raw_request(two_gate_module("top", true, false)));
  EXPECT_NE(k1, k2);
}

TEST(SvcCacheKey, WorkloadSamplesChangeKey) {
  const auto base = tiny_request();
  auto altered = base;
  auto wl = std::make_shared<core::CircuitWorkload>(*base.workload);
  wl->feature_codes[0][0] ^= 1;  // one feature code of one sample
  altered.workload = std::move(wl);
  EXPECT_NE(SweepService::cache_key(base), SweepService::cache_key(altered));
}

TEST(SvcCacheKey, FlowNameChangesKey) {
  auto r1 = tiny_request();
  auto r2 = r1;
  r1.flow = "area";
  r2.flow = "energy";
  EXPECT_NE(SweepService::cache_key(r1), SweepService::cache_key(r2));
}

TEST(SvcCacheKey, ResultRelevantOptionsChangeKey) {
  auto r1 = tiny_request();
  auto r2 = r1;
  r2.options.power_samples += 1;
  EXPECT_NE(SweepService::cache_key(r1), SweepService::cache_key(r2));
}

TEST(SvcCacheKey, ThreadingKnobsDoNotChangeKey) {
  // evaluate_circuit's determinism contract: thread counts cannot change
  // any result field, so they must not fragment the cache.
  auto r1 = tiny_request();
  auto r2 = r1;
  r2.options.power_threads = 7;
  r2.options.verify.num_threads = 3;
  r2.options.validate_module = false;
  EXPECT_EQ(SweepService::cache_key(r1), SweepService::cache_key(r2));
}

TEST(SvcCacheKey, SimdBackendDoesNotChangeKey) {
  // Same contract as the threading knobs: every lane-word backend is
  // bit-identical to the u64 reference, so a request pinned to u64 must
  // share a cache entry with one evaluated under AVX2/AVX-512.
  auto r1 = tiny_request();
  auto r2 = r1;
  auto r3 = r1;
  r1.options.backend = sim::Backend::kU64;
  r2.options.backend = sim::Backend::kAvx2;
  r3.options.backend = sim::Backend::kAvx512;
  EXPECT_EQ(SweepService::cache_key(r1), SweepService::cache_key(r2));
  EXPECT_EQ(SweepService::cache_key(r1), SweepService::cache_key(r3));
}

void expect_reports_identical(const core::HardwareReport& a,
                              const core::HardwareReport& b) {
  // Exact comparisons, doubles included: both sides came from the same
  // deterministic pipeline, so even the last ulp must agree.
  EXPECT_EQ(a.area_cm2, b.area_cm2);
  EXPECT_EQ(a.power_mw, b.power_mw);
  EXPECT_EQ(a.frequency_hz, b.frequency_hz);
  EXPECT_EQ(a.latency_ms, b.latency_ms);
  EXPECT_EQ(a.energy_mj, b.energy_mj);
  EXPECT_EQ(a.static_mw, b.static_mw);
  EXPECT_EQ(a.dynamic_mw, b.dynamic_mw);
  EXPECT_EQ(a.dynamic_glitch_mw, b.dynamic_glitch_mw);
  EXPECT_EQ(a.functional_transitions, b.functional_transitions);
  EXPECT_EQ(a.glitch_transitions, b.glitch_transitions);
  EXPECT_EQ(a.logic_depth, b.logic_depth);
  EXPECT_EQ(a.num_cells, b.num_cells);
  EXPECT_EQ(a.num_dffs, b.num_dffs);
  EXPECT_EQ(a.cycles_per_inference, b.cycles_per_inference);
  EXPECT_EQ(a.verified, b.verified);
  EXPECT_EQ(a.verified_samples, b.verified_samples);
  EXPECT_EQ(a.verified_mismatches, b.verified_mismatches);
  EXPECT_EQ(a.opt_flow, b.opt_flow);
  EXPECT_EQ(a.opt_cost_probes, b.opt_cost_probes);
  ASSERT_EQ(a.groups.size(), b.groups.size());
  for (std::size_t g = 0; g < a.groups.size(); ++g) {
    EXPECT_EQ(a.groups[g].name, b.groups[g].name);
    EXPECT_EQ(a.groups[g].cells, b.groups[g].cells);
    EXPECT_EQ(a.groups[g].area_cm2, b.groups[g].area_cm2);
    EXPECT_EQ(a.groups[g].static_mw, b.groups[g].static_mw);
    EXPECT_EQ(a.groups[g].dynamic_mw, b.groups[g].dynamic_mw);
    EXPECT_EQ(a.groups[g].glitch_mw, b.groups[g].glitch_mw);
  }
  EXPECT_EQ(a.post_opt_stats.num_cells, b.post_opt_stats.num_cells);
  EXPECT_EQ(a.post_opt_stats.num_nets, b.post_opt_stats.num_nets);
  EXPECT_EQ(a.post_opt_stats.num_dffs, b.post_opt_stats.num_dffs);
}

TEST(SvcCache, CachedReportIdenticalToFreshEvaluation) {
  const auto lib = cells::CellLibrary::egfet();
  SweepService service(lib);
  const auto req = tiny_request();

  const core::HardwareReport first = service.evaluate(req);
  const core::HardwareReport cached = service.evaluate(req);

  const SweepStats stats = service.stats();
  EXPECT_EQ(stats.evaluated, 1u);
  EXPECT_GE(stats.cache_hits, 1u);

  // The cache hit is a copy of the one real evaluation...
  expect_reports_identical(first, cached);
  // ...and that evaluation matches a from-scratch evaluate_circuit.
  const core::HardwareReport fresh = core::evaluate_circuit(
      *req.module, req.cycles_per_inference, lib, *req.workload, req.options);
  expect_reports_identical(fresh, cached);
}

}  // namespace
}  // namespace pml::svc
