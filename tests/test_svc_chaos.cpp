// Deterministic fault-injection (chaos) suite for the hardened
// svc::SweepService: every robustness mechanism — deadlines,
// cancellation, admission control, bounded caching, retry, poisoned
// workers, stop modes, destruct-while-waiting — proven without a single
// real sleep.  Time is a util::ManualClock; worker scheduling is pinned
// with an ordinal gate on the service's test hook; faults come from
// chaos::FaultPlan.  Same-seed runs must produce identical status
// sequences (asserted below), which is what makes this suite safe for
// the ASan/TSan CI legs.

#include "pml/util/alloc_hook.hpp"

PML_INSTALL_COUNTING_ALLOC_HOOK;

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "pml/arch/sequential_svm.hpp"
#include "pml/chaos/fault_plan.hpp"
#include "pml/core/eval_context.hpp"
#include "pml/core/evaluate.hpp"
#include "pml/core/fault_campaign.hpp"
#include "pml/quant/svm_quant.hpp"
#include "pml/svc/sweep_service.hpp"
#include "pml/util/cancellation.hpp"
#include "pml/util/clock.hpp"

namespace pml::svc {
namespace {

constexpr std::uint64_t kMs = 1'000'000;  // ns per millisecond

quant::QuantizedSvm tiny_model() {
  quant::QuantizedSvm q;
  q.strategy = ml::MulticlassStrategy::kOneVsRest;
  q.num_classes = 3;
  q.input_format = quant::input_format(3);
  q.weight_format =
      fixed::FixedFormat{.total_bits = 4, .frac_bits = 3, .is_signed = true};
  q.classifiers = {quant::QuantizedClassifier{{3, -2}, 1},
                   quant::QuantizedClassifier{{-1, 4}, 0},
                   quant::QuantizedClassifier{{2, 2}, -3}};
  return q;
}

std::shared_ptr<core::CircuitWorkload> tiny_workload(
    const quant::QuantizedSvm& q) {
  auto wl = std::make_shared<core::CircuitWorkload>();
  for (std::int64_t a = 0; a <= 7; ++a) {
    for (std::int64_t b = 0; b <= 7; ++b) {
      wl->feature_codes.push_back({a, b});
      wl->expected_class.push_back(q.predict_codes({a, b}));
    }
  }
  return wl;
}

/// A request whose cache key is a function of `variant` (power_samples is
/// part of the option digest), so tests mint distinct keys cheaply while
/// sharing one module and workload.
SweepRequest tiny_request(std::size_t variant = 0) {
  static const auto shared = [] {
    const auto q = tiny_model();
    auto circuit = arch::build_sequential_svm(q);
    return std::make_pair(
        std::make_shared<const netlist::Module>(std::move(circuit.module)),
        std::make_pair(circuit.cycles_per_inference, tiny_workload(q)));
  }();
  SweepRequest req;
  req.module = shared.first;
  req.cycles_per_inference = shared.second.first;
  req.workload = shared.second.second;
  req.options.power_samples = 16 + variant;
  return req;
}

/// Deterministic scheduling lever: installed as the service test hook, it
/// blocks the evaluating thread at held ordinals until released, and lets
/// tests wait until a given ordinal has been *entered* (i.e. the worker
/// has claimed the job and is parked inside the attempt).
class OrdinalGate {
 public:
  std::function<void(std::uint64_t)> hook() {
    return [this](std::uint64_t ordinal) { enter(ordinal); };
  }
  void hold(std::uint64_t ordinal) {
    const std::lock_guard<std::mutex> lock(mu_);
    held_.insert(ordinal);
  }
  void release(std::uint64_t ordinal) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      held_.erase(ordinal);
    }
    cv_.notify_all();
  }
  void release_all() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      held_.clear();
    }
    cv_.notify_all();
  }
  void wait_entered(std::uint64_t ordinal) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return entered_.count(ordinal) != 0; });
  }

 private:
  void enter(std::uint64_t ordinal) {
    std::unique_lock<std::mutex> lock(mu_);
    entered_.insert(ordinal);
    cv_.notify_all();
    cv_.wait(lock, [&] { return held_.count(ordinal) == 0; });
  }
  std::mutex mu_;
  std::condition_variable cv_;
  std::set<std::uint64_t> held_;
  std::set<std::uint64_t> entered_;
};

// --- fault kinds, one by one ----------------------------------------------

TEST(SvcChaos, InjectedThrowIsTransientAndRetried) {
  const auto lib = cells::CellLibrary::egfet();
  util::ManualClock clock;
  SweepService::Options opts;
  opts.clock = &clock;
  opts.retry.max_attempts = 3;
  opts.retry.backoff_ns = kMs;
  SweepService service(lib, opts);
  chaos::FaultPlan plan;
  plan.throw_at(0);
  service.install_chaos(&plan);

  const core::HardwareReport rep = service.evaluate(tiny_request());
  EXPECT_TRUE(rep.verified);
  EXPECT_EQ(plan.fired(), 1u);
  const SweepStats stats = service.stats();
  EXPECT_EQ(stats.retried, 1u);
  // Attempt 0 threw before reaching the evaluator; attempt 1 ran it.
  EXPECT_EQ(stats.evaluated, 1u);
  EXPECT_EQ(stats.errors, 0u);
  // Exactly one backoff, of exactly the base duration, on virtual time.
  EXPECT_EQ(clock.sleeps(), std::vector<std::uint64_t>{kMs});
}

TEST(SvcChaos, ExhaustedTransientFailsWithLabeledErrorAndIsNotCached) {
  const auto lib = cells::CellLibrary::egfet();
  util::ManualClock clock;
  SweepService::Options opts;
  opts.clock = &clock;
  opts.retry.max_attempts = 2;
  opts.retry.backoff_ns = kMs;
  SweepService service(lib, opts);
  chaos::FaultPlan plan;
  plan.throw_at(0).throw_at(1);  // both attempts of job #1
  service.install_chaos(&plan);

  const SweepTicket ticket = service.submit(tiny_request());
  try {
    (void)service.wait(ticket);
    FAIL() << "expected JobError";
  } catch (const JobError& e) {
    const std::string what = e.what();
    // Satellite (b): job id + 16-hex key digest + original message.
    EXPECT_NE(what.find("SweepService job #1"), std::string::npos) << what;
    EXPECT_NE(what.find("(key "), std::string::npos) << what;
    EXPECT_NE(what.find("chaos: injected transient failure"),
              std::string::npos)
        << what;
  }
  SweepStats stats = service.stats();
  EXPECT_EQ(stats.errors, 1u);
  EXPECT_EQ(stats.retried, 1u);
  // An exhausted-transient outcome must NOT stick in the cache: the same
  // request re-runs (ordinal 2 is clean) and succeeds.
  EXPECT_EQ(stats.cache_entries, 0u);
  const core::HardwareReport rep = service.evaluate(tiny_request());
  EXPECT_TRUE(rep.verified);
  stats = service.stats();
  EXPECT_EQ(stats.cache_misses, 2u);  // the retry was a fresh job
  EXPECT_EQ(stats.cache_entries, 1u);
}

TEST(SvcChaos, AllocationFailureInsideEvaluationRetries) {
  const auto lib = cells::CellLibrary::egfet();
  util::ManualClock clock;
  SweepService::Options opts;
  opts.clock = &clock;
  opts.retry.max_attempts = 2;
  opts.retry.backoff_ns = kMs;
  SweepService service(lib, opts);
  chaos::FaultPlan plan;
  // The 50th allocation of attempt 0 throws std::bad_alloc (a cold
  // evaluation allocates far more than that); attempt 1 runs clean.
  plan.fail_alloc_at(0, 50);
  service.install_chaos(&plan);

  const core::HardwareReport rep = service.evaluate(tiny_request());
  EXPECT_TRUE(rep.verified);
  const SweepStats stats = service.stats();
  EXPECT_EQ(stats.retried, 1u);
  EXPECT_EQ(stats.evaluated, 2u);  // both attempts reached the evaluator
  EXPECT_EQ(stats.errors, 0u);
}

TEST(SvcChaos, DelayFaultExpiresDeadlineOnVirtualTime) {
  const auto lib = cells::CellLibrary::egfet();
  util::ManualClock clock;
  SweepService::Options opts;
  opts.clock = &clock;
  SweepService service(lib, opts);
  chaos::FaultPlan plan;
  plan.delay_at(0, 10 * kMs);  // a 10 ms straggler, in zero real time
  service.install_chaos(&plan);

  SweepRequest req = tiny_request();
  req.deadline_ns = 5 * kMs;
  const SweepTicket ticket = service.submit(req);
  const SweepOutcome out = service.wait_outcome(ticket);
  EXPECT_EQ(out.status, JobStatus::kTimeout);
  ASSERT_TRUE(out.error != nullptr);
  EXPECT_THROW(std::rethrow_exception(out.error), JobTimeout);
  EXPECT_THROW((void)service.wait(ticket), JobTimeout);
  const SweepStats stats = service.stats();
  EXPECT_EQ(stats.timeouts, 1u);
  // A timeout is not a cacheable verdict: the key re-runs next time.
  EXPECT_EQ(stats.cache_entries, 0u);
}

TEST(SvcChaos, PoisonedWorkerRequeuesJobAndPoolRespawns) {
  const auto lib = cells::CellLibrary::egfet();
  SweepService service(lib);  // single worker: poison kills the whole pool
  chaos::FaultPlan plan;
  plan.poison_at(0);
  service.install_chaos(&plan);

  const core::HardwareReport rep = service.evaluate(tiny_request());
  EXPECT_TRUE(rep.verified);
  const SweepStats stats = service.stats();
  EXPECT_EQ(stats.workers_respawned, 1u);
  EXPECT_EQ(stats.errors, 0u);
  // A second job on the respawned pool works too.
  EXPECT_TRUE(service.evaluate(tiny_request(1)).verified);
}

TEST(SvcChaos, PoisonWithSurvivingWorkersDegradesGracefully) {
  const auto lib = cells::CellLibrary::egfet();
  SweepService::Options opts;
  opts.num_workers = 2;
  SweepService service(lib, opts);
  chaos::FaultPlan plan;
  plan.poison_at(0);
  service.install_chaos(&plan);

  // Whichever worker claims the job is poisoned and retires; the
  // survivor claims the requeued job and completes it — no respawn
  // needed while any worker lives.
  EXPECT_TRUE(service.evaluate(tiny_request()).verified);
  EXPECT_TRUE(service.evaluate(tiny_request(1)).verified);
  EXPECT_EQ(service.stats().errors, 0u);
}

// --- deadlines & cancellation ---------------------------------------------

TEST(SvcChaos, QueuedJobTimesOutWithoutSpendingAnEvaluation) {
  const auto lib = cells::CellLibrary::egfet();
  util::ManualClock clock;
  SweepService::Options opts;
  opts.clock = &clock;
  SweepService service(lib, opts);
  OrdinalGate gate;
  gate.hold(0);
  service.set_test_hook(gate.hook());
  chaos::FaultPlan plan;
  plan.delay_at(0, 10 * kMs);  // job A straggles past B's deadline
  service.install_chaos(&plan);

  const SweepTicket a = service.submit(tiny_request(0));
  SweepRequest req_b = tiny_request(1);
  req_b.deadline_ns = 5 * kMs;
  const SweepTicket b = service.submit(req_b);  // queued behind A
  gate.release(0);

  EXPECT_TRUE(service.wait(a).verified);
  EXPECT_EQ(service.wait_outcome(b).status, JobStatus::kTimeout);
  const SweepStats stats = service.stats();
  // B was resolved at claim time — only A's attempt ran the evaluator.
  EXPECT_EQ(stats.evaluated, 1u);
  EXPECT_EQ(stats.timeouts, 1u);
}

TEST(SvcChaos, DeadlineBoundaryIsExactOnManualClock) {
  const auto lib = cells::CellLibrary::egfet();
  util::ManualClock clock;
  SweepService::Options opts;
  opts.clock = &clock;
  SweepService service(lib, opts);
  OrdinalGate gate;
  service.set_test_hook(gate.hook());

  // Advancing virtual time to exactly the deadline while the job is
  // mid-attempt trips the first phase checkpoint.
  gate.hold(0);
  SweepRequest req_a = tiny_request(0);
  req_a.deadline_ns = 5 * kMs;
  const SweepTicket a = service.submit(req_a);
  gate.wait_entered(0);
  clock.advance(5 * kMs);
  gate.release(0);
  EXPECT_EQ(service.wait_outcome(a).status, JobStatus::kTimeout);

  // One nanosecond short of the deadline: the job completes.
  gate.hold(1);
  SweepRequest req_b = tiny_request(1);
  req_b.deadline_ns = 5 * kMs;
  const SweepTicket b = service.submit(req_b);
  gate.wait_entered(1);
  clock.advance(5 * kMs - 1);
  gate.release(1);
  EXPECT_EQ(service.wait_outcome(b).status, JobStatus::kOk);
}

TEST(SvcChaos, CancelQueuedJobResolvesImmediately) {
  const auto lib = cells::CellLibrary::egfet();
  SweepService service(lib);
  OrdinalGate gate;
  gate.hold(0);
  service.set_test_hook(gate.hook());

  const SweepTicket a = service.submit(tiny_request(0));
  gate.wait_entered(0);  // A claimed: the queue is empty again
  const SweepTicket b = service.submit(tiny_request(1));
  EXPECT_TRUE(service.cancel(b));
  // Resolved without waiting for a worker (A is still held).
  const SweepOutcome out = service.wait_outcome(b);
  EXPECT_EQ(out.status, JobStatus::kCancelled);
  EXPECT_THROW(std::rethrow_exception(out.error), JobCancelled);
  EXPECT_FALSE(service.cancel(b));  // already done
  gate.release(0);
  EXPECT_TRUE(service.wait(a).verified);
  const SweepStats stats = service.stats();
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.evaluated, 1u);  // only A ran
}

TEST(SvcChaos, CancelRunningJobStopsAtNextCheckpoint) {
  const auto lib = cells::CellLibrary::egfet();
  SweepService service(lib);
  OrdinalGate gate;
  gate.hold(0);
  service.set_test_hook(gate.hook());

  const SweepTicket a = service.submit(tiny_request());
  gate.wait_entered(0);  // attempt in flight (parked in the hook)
  EXPECT_TRUE(service.cancel(a));
  gate.release(0);  // evaluation proceeds into the first checkpoint
  try {
    (void)service.wait(a);
    FAIL() << "expected JobCancelled";
  } catch (const JobCancelled& e) {
    EXPECT_NE(std::string(e.what()).find("SweepService job #1"),
              std::string::npos);
  }
  EXPECT_EQ(service.stats().cancelled, 1u);
}

// --- admission control -----------------------------------------------------

TEST(SvcChaos, ShedAdmissionFailsFastWithPreResolvedTicket) {
  const auto lib = cells::CellLibrary::egfet();
  SweepService::Options opts;
  opts.max_queue_depth = 1;
  opts.admission = AdmissionPolicy::kShed;
  SweepService service(lib, opts);
  OrdinalGate gate;
  gate.hold(0);
  service.set_test_hook(gate.hook());

  const SweepTicket a = service.submit(tiny_request(0));
  gate.wait_entered(0);                              // A running (held)
  const SweepTicket b = service.submit(tiny_request(1));  // fills the queue
  const SweepTicket c = service.submit(tiny_request(2));  // shed
  EXPECT_EQ(c.admitted, JobStatus::kShed);
  EXPECT_EQ(c.handle, nullptr);
  const SweepOutcome out = service.wait_outcome(c);  // resolves instantly
  EXPECT_EQ(out.status, JobStatus::kShed);
  EXPECT_THROW((void)service.wait(c), JobShed);
  EXPECT_FALSE(service.cancel(c));

  gate.release_all();
  EXPECT_TRUE(service.wait(a).verified);
  EXPECT_TRUE(service.wait(b).verified);
  const SweepStats stats = service.stats();
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.evaluated, 2u);  // the shed request never ran
  EXPECT_EQ(stats.submitted, 3u);
}

TEST(SvcChaos, BlockAdmissionWaitsForSpace) {
  const auto lib = cells::CellLibrary::egfet();
  SweepService::Options opts;
  opts.max_queue_depth = 1;
  opts.admission = AdmissionPolicy::kBlock;
  SweepService service(lib, opts);
  OrdinalGate gate;
  gate.hold(0);
  service.set_test_hook(gate.hook());

  const SweepTicket a = service.submit(tiny_request(0));
  gate.wait_entered(0);
  const SweepTicket b = service.submit(tiny_request(1));
  // C must block until A finishes and the worker drains B's slot.
  SweepTicket c;
  std::thread submitter([&] { c = service.submit(tiny_request(2)); });
  gate.release_all();
  submitter.join();
  EXPECT_TRUE(service.wait(a).verified);
  EXPECT_TRUE(service.wait(b).verified);
  EXPECT_TRUE(service.wait(c).verified);
  const SweepStats stats = service.stats();
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.evaluated, 3u);
}

TEST(SvcChaos, CallerRunsAdmissionEvaluatesOnSubmittingThread) {
  const auto lib = cells::CellLibrary::egfet();
  SweepService::Options opts;
  opts.max_queue_depth = 1;
  opts.admission = AdmissionPolicy::kCallerRuns;
  SweepService service(lib, opts);
  OrdinalGate gate;
  gate.hold(0);
  service.set_test_hook(gate.hook());

  const SweepTicket a = service.submit(tiny_request(0));
  gate.wait_entered(0);
  const SweepTicket b = service.submit(tiny_request(1));
  // The queue is full and the worker is held hostage, yet C resolves:
  // this thread ran it.
  const SweepTicket c = service.submit(tiny_request(2));
  const SweepOutcome out = service.wait_outcome(c);
  EXPECT_EQ(out.status, JobStatus::kOk);
  EXPECT_TRUE(out.report.verified);
  EXPECT_EQ(service.stats().caller_runs, 1u);

  gate.release_all();
  EXPECT_TRUE(service.wait(a).verified);
  EXPECT_TRUE(service.wait(b).verified);
}

// --- bounded cache ---------------------------------------------------------

TEST(SvcChaos, CacheEvictionIsByteAccountedAndLru) {
  const auto lib = cells::CellLibrary::egfet();
  // Measure one entry's footprint on an unbounded service first.
  std::size_t entry_bytes = 0;
  {
    SweepService probe(lib);
    (void)probe.evaluate(tiny_request(0));
    entry_bytes = probe.stats().cache_bytes;
    ASSERT_GT(entry_bytes, 0u);
  }
  // Budget for two entries (same workload/flow => same footprint).
  SweepService::Options opts;
  opts.max_cache_bytes = 2 * entry_bytes + entry_bytes / 2;
  SweepService service(lib, opts);
  (void)service.evaluate(tiny_request(0));  // cache: [A]
  (void)service.evaluate(tiny_request(1));  // cache: [B, A]
  (void)service.evaluate(tiny_request(0));  // touch A: [A, B]
  SweepStats stats = service.stats();
  EXPECT_EQ(stats.cache_entries, 2u);
  EXPECT_EQ(stats.cache_bytes, 2 * entry_bytes);
  EXPECT_EQ(stats.cache_evictions, 0u);

  (void)service.evaluate(tiny_request(2));  // evicts LRU = B: [C, A]
  stats = service.stats();
  EXPECT_EQ(stats.cache_entries, 2u);
  EXPECT_EQ(stats.cache_bytes, 2 * entry_bytes);
  EXPECT_EQ(stats.cache_evictions, 1u);

  const std::uint64_t misses_before = stats.cache_misses;
  (void)service.evaluate(tiny_request(0));  // A survived the eviction: hit
  EXPECT_EQ(service.stats().cache_misses, misses_before);
  (void)service.evaluate(tiny_request(1));  // B was evicted: re-evaluates
  EXPECT_EQ(service.stats().cache_misses, misses_before + 1);
}

TEST(SvcChaos, TinyCacheBudgetStillServesWaiters) {
  const auto lib = cells::CellLibrary::egfet();
  SweepService::Options opts;
  opts.max_cache_bytes = 1;  // every entry evicts itself on insert
  SweepService service(lib, opts);
  // The ticket handle, not the cache, keeps the result alive for waiters.
  const SweepTicket t = service.submit(tiny_request());
  EXPECT_TRUE(service.wait(t).verified);
  EXPECT_TRUE(service.wait(t).verified);  // re-wait on the same ticket
  const SweepStats stats = service.stats();
  EXPECT_EQ(stats.cache_entries, 0u);
  EXPECT_EQ(stats.cache_bytes, 0u);
  EXPECT_EQ(stats.cache_evictions, 1u);
}

// --- lifecycle -------------------------------------------------------------

TEST(SvcChaos, StopDrainCompletesQueuedJobsAndRejectsNewOnes) {
  const auto lib = cells::CellLibrary::egfet();
  SweepService service(lib);
  const SweepTicket a = service.submit(tiny_request(0));
  const SweepTicket b = service.submit(tiny_request(1));
  service.stop(StopMode::kDrain);
  EXPECT_TRUE(service.wait(a).verified);
  EXPECT_TRUE(service.wait(b).verified);
  EXPECT_THROW((void)service.submit(tiny_request(2)), ServiceStopped);
  service.stop(StopMode::kDrain);  // double-stop is a no-op
  service.stop(StopMode::kAbort);  // even with a different mode
}

TEST(SvcChaos, StopAbortFailsQueuedJobsAndCancelsRunningOnes) {
  const auto lib = cells::CellLibrary::egfet();
  SweepService service(lib);
  OrdinalGate gate;
  gate.hold(0);
  service.set_test_hook(gate.hook());

  const SweepTicket a = service.submit(tiny_request(0));
  gate.wait_entered(0);  // A running (held)
  const SweepTicket b = service.submit(tiny_request(1));
  const SweepTicket c = service.submit(tiny_request(2));

  // stop() joins the pool, and the pool is parked in our gate — run it on
  // a side thread and release the gate once the queued jobs resolved.
  std::thread stopper([&] { service.stop(StopMode::kAbort); });
  for (const SweepTicket* t : {&b, &c}) {
    const SweepOutcome out = service.wait_outcome(*t);
    EXPECT_EQ(out.status, JobStatus::kFailed);
    try {
      std::rethrow_exception(out.error);
      FAIL() << "expected ServiceStopped";
    } catch (const ServiceStopped& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("service stopped before evaluation"),
                std::string::npos)
          << what;
      EXPECT_NE(what.find("(key "), std::string::npos) << what;
    }
  }
  gate.release_all();  // A proceeds into its first checkpoint and cancels
  stopper.join();
  EXPECT_EQ(service.wait_outcome(a).status, JobStatus::kCancelled);
  EXPECT_THROW((void)service.submit(tiny_request(3)), ServiceStopped);
  const SweepStats stats = service.stats();
  EXPECT_EQ(stats.errors, 2u);
  EXPECT_EQ(stats.cancelled, 1u);
}

TEST(SvcChaos, DestructWhileWaitingIsSafe) {
  const auto lib = cells::CellLibrary::egfet();
  OrdinalGate gate;
  gate.hold(0);
  auto service = std::make_unique<SweepService>(lib);
  service->set_test_hook(gate.hook());
  const SweepTicket t = service->submit(tiny_request());

  SweepOutcome out;
  std::thread waiter([&] { out = service->wait_outcome(t); });
  // The stats waiter-gauge makes "the waiter is inside wait_outcome"
  // observable, so the destruction below provably races a live waiter.
  while (service->stats().waiters == 0) std::this_thread::yield();
  gate.release_all();
  service.reset();  // drains the job, then waits for the waiter to leave
  waiter.join();
  EXPECT_EQ(out.status, JobStatus::kOk);
  EXPECT_TRUE(out.report.verified);
}

// --- determinism -----------------------------------------------------------

/// One full chaotic run: N distinct jobs through a single-worker service
/// under a seeded random fault plan, virtual clock, and retry policy.
/// Returns the status sequence in submission order.
std::vector<JobStatus> chaotic_run(std::uint64_t seed) {
  const auto lib = cells::CellLibrary::egfet();
  util::ManualClock clock;
  SweepService::Options opts;
  opts.clock = &clock;
  opts.retry.max_attempts = 2;
  opts.retry.backoff_ns = kMs;
  SweepService service(lib, opts);
  const chaos::FaultPlan plan =
      chaos::FaultPlan::random(seed, /*evaluations=*/12, /*fault_rate=*/0.5,
                               /*delay_ns=*/2 * kMs);
  service.install_chaos(&plan);

  constexpr std::size_t kJobs = 6;
  std::vector<SweepTicket> tickets;
  for (std::size_t i = 0; i < kJobs; ++i) {
    SweepRequest req = tiny_request(i);
    req.deadline_ns = 100 * kMs;  // generous: delays alone cannot trip it
    tickets.push_back(service.submit(req));
  }
  std::vector<JobStatus> statuses;
  for (const SweepTicket& t : tickets) {
    statuses.push_back(service.wait_outcome(t).status);
  }
  return statuses;
}

TEST(SvcChaos, SameSeedRunsProduceIdenticalStatusSequences) {
  const std::vector<JobStatus> first = chaotic_run(42);
  const std::vector<JobStatus> second = chaotic_run(42);
  EXPECT_EQ(first, second);
  // The plan is not vacuous: at least one job must have survived (the
  // tiny circuit always verifies when it runs to completion).
  EXPECT_NE(std::count(first.begin(), first.end(), JobStatus::kOk), 0);
}

// --- direct evaluation-core injection --------------------------------------

TEST(SvcChaos, PhaseHookThrowLeavesContextReusable) {
  const auto lib = cells::CellLibrary::egfet();
  const SweepRequest req = tiny_request();
  core::EvalContext ctx;
  core::HardwareReport rep;
  core::EvaluateOptions opts = req.options;

  int throws_left = 1;
  ctx.chaos_phase_hook = [&](const char* phase) {
    if (std::string(phase) == "evaluate.sta" && throws_left > 0) {
      --throws_left;
      throw chaos::InjectedFault("chaos: mid-phase failure at sta");
    }
  };
  EXPECT_THROW(
      core::evaluate_circuit_into(ctx, rep, *req.module,
                                  req.cycles_per_inference, lib,
                                  *req.workload, opts),
      chaos::InjectedFault);
  // The pooled context must recover: the very next evaluation on the
  // same (half-torn) context succeeds and verifies.
  ctx.chaos_phase_hook = nullptr;
  core::evaluate_circuit_into(ctx, rep, *req.module, req.cycles_per_inference,
                              lib, *req.workload, opts);
  EXPECT_TRUE(rep.verified);
}

TEST(SvcChaos, CancellationTokenAbortsEvaluateAndFaultCampaign) {
  const auto lib = cells::CellLibrary::egfet();
  const SweepRequest req = tiny_request();

  std::atomic<bool> flag{true};  // pre-cancelled
  const util::CancellationToken token(&flag);
  core::EvaluateOptions opts = req.options;
  opts.cancel = &token;
  try {
    (void)core::evaluate_circuit(*req.module, req.cycles_per_inference, lib,
                                 *req.workload, opts);
    FAIL() << "expected util::Cancelled";
  } catch (const util::Cancelled& e) {
    EXPECT_EQ(e.reason(), util::Cancelled::Reason::kCancelled);
  }

  // Deadline-only token on a virtual clock, already expired.
  util::ManualClock clock(/*start_ns=*/10 * kMs);
  const util::CancellationToken expired(nullptr, /*deadline_ns=*/5 * kMs,
                                        &clock);
  opts.cancel = &expired;
  try {
    (void)core::evaluate_circuit(*req.module, req.cycles_per_inference, lib,
                                 *req.workload, opts);
    FAIL() << "expected util::Cancelled";
  } catch (const util::Cancelled& e) {
    EXPECT_EQ(e.reason(), util::Cancelled::Reason::kDeadline);
  }

  // The fault-campaign batch loop honors the same token.
  core::FaultCampaignOptions fopts;
  fopts.cancel = &token;
  const auto sets = core::enumerate_single_faults(*req.module);
  EXPECT_THROW((void)core::run_fault_campaign(*req.module,
                                              req.cycles_per_inference,
                                              *req.workload, sets, fopts),
               util::Cancelled);
}

}  // namespace
}  // namespace pml::svc
