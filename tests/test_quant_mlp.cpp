// MLP quantization: integer inference semantics (ReLU, shift, saturation),
// agreement with the float model, accumulator bounds.

#include <gtest/gtest.h>

#include "pml/ml/metrics.hpp"
#include "pml/ml/mlp.hpp"
#include "pml/ml/scaler.hpp"
#include "pml/ml/synthetic_datasets.hpp"
#include "pml/quant/mlp_quant.hpp"

namespace pml::quant {
namespace {

struct TrainedMlp {
  ml::MlpModel model;
  ml::Dataset train;
  ml::Dataset test;
};

TrainedMlp trained_mlp(ml::UciProfile profile, int hidden, int epochs = 25) {
  const ml::Dataset d = ml::make_uci_like(profile);
  const ml::Split s = ml::stratified_split(d, 0.8, 81);
  ml::MinMaxScaler scaler;
  scaler.fit(s.train);
  TrainedMlp setup;
  setup.train = scaler.transform(s.train);
  setup.test = scaler.transform(s.test);
  ml::MlpTrainOptions opts;
  opts.hidden = hidden;
  opts.epochs = epochs;
  setup.model = ml::train_mlp(setup.train, opts);
  return setup;
}

TEST(QuantizedMlp, ShapesAndFormats) {
  const TrainedMlp s = trained_mlp(ml::UciProfile::kCardio, 4, 5);
  const auto q = quantize_mlp(s.model, s.train, 5, 6, 6);
  EXPECT_EQ(q.num_inputs, 21);
  EXPECT_EQ(q.num_hidden, 4);
  EXPECT_EQ(q.num_outputs, 3);
  EXPECT_EQ(q.input_format.total_bits, 5);
  EXPECT_EQ(q.w1_format.total_bits, 6);
  EXPECT_EQ(q.hidden_format.total_bits, 6);
  EXPECT_FALSE(q.hidden_format.is_signed);
  EXPECT_GE(q.hidden_shift, 0);
}

TEST(QuantizedMlp, HighPrecisionAgreesWithFloat) {
  const TrainedMlp s = trained_mlp(ml::UciProfile::kCardio, 4);
  const auto q = quantize_mlp(s.model, s.train, 8, 10, 10);
  const auto fp = s.model.predict_all(s.test.X);
  const auto ip = q.predict_all(s.test.X);
  std::size_t agree = 0;
  for (std::size_t i = 0; i < fp.size(); ++i) {
    if (fp[i] == ip[i]) ++agree;
  }
  EXPECT_GT(static_cast<double>(agree) / static_cast<double>(fp.size()), 0.95);
}

TEST(QuantizedMlp, HiddenCodesRespectSaturation) {
  const TrainedMlp s = trained_mlp(ml::UciProfile::kRedWine, 3, 10);
  const auto q = quantize_mlp(s.model, s.train, 5, 5, 4);
  const std::int64_t hmax = q.hidden_format.max_code();
  for (std::size_t i = 0; i < 100 && i < s.test.size(); ++i) {
    const auto xq = quantize_features(s.test.X[i], q.input_format);
    for (const auto h : q.hidden_codes(xq)) {
      EXPECT_GE(h, 0);
      EXPECT_LE(h, hmax);
    }
  }
}

TEST(QuantizedMlp, ReluZeroesNegativePreactivations) {
  // Handcrafted single-neuron model with a strongly negative bias.
  ml::MlpModel m;
  m.num_inputs = 1;
  m.num_hidden = 1;
  m.num_outputs = 2;
  m.w1 = {{0.5}};
  m.b1 = {-10.0};
  m.w2 = {{1.0}, {-1.0}};
  m.b2 = {0.0, 0.0};
  ml::Dataset cal;
  cal.num_features = 1;
  cal.num_classes = 2;
  cal.X = {{0.0}, {1.0}};
  cal.y = {0, 1};
  const auto q = quantize_mlp(m, cal, 4, 6, 4);
  const auto h = q.hidden_codes(quantize_features({1.0}, q.input_format));
  EXPECT_EQ(h[0], 0) << "pre-activation is negative, ReLU must clamp to 0";
}

TEST(QuantizedMlp, AccumulatorBoundsHold) {
  const TrainedMlp s = trained_mlp(ml::UciProfile::kWhiteWine, 3, 10);
  const auto q = quantize_mlp(s.model, s.train, 5, 5, 5);
  const std::int64_t l1 = std::int64_t{1} << (q.layer1_acc_bits() - 1);
  const std::int64_t l2 = std::int64_t{1} << (q.layer2_acc_bits() - 1);
  for (std::size_t i = 0; i < 150 && i < s.test.size(); ++i) {
    const auto xq = quantize_features(s.test.X[i], q.input_format);
    // Recompute raw layer-1 accumulators to check the declared bound.
    for (int n = 0; n < q.num_hidden; ++n) {
      const auto ns = static_cast<std::size_t>(n);
      std::int64_t acc = q.b1[ns];
      for (int j = 0; j < q.num_inputs; ++j) {
        acc += q.w1[ns][static_cast<std::size_t>(j)] *
               xq[static_cast<std::size_t>(j)];
      }
      EXPECT_LT(std::llabs(acc), l1);
    }
    for (const auto z : q.logits_codes(xq)) {
      EXPECT_LT(std::llabs(z), l2);
    }
  }
}

TEST(QuantizedMlp, QuantizedAccuracyReasonable) {
  const TrainedMlp s = trained_mlp(ml::UciProfile::kCardio, 4);
  const double float_acc =
      ml::accuracy(s.model.predict_all(s.test.X), s.test.y);
  const auto q = quantize_mlp(s.model, s.train, 6, 6, 6);
  const double q_acc = ml::accuracy(q.predict_all(s.test.X), s.test.y);
  EXPECT_GT(q_acc, float_acc - 0.08);
}

TEST(QuantizedMlp, RejectsDimensionMismatch) {
  const TrainedMlp s = trained_mlp(ml::UciProfile::kCardio, 3, 3);
  const auto q = quantize_mlp(s.model, s.train, 5, 6, 6);
  EXPECT_THROW((void)q.hidden_codes({1, 2, 3}), std::invalid_argument);
}

}  // namespace
}  // namespace pml::quant
