// pml::opt: every pass alone and the full fixpoint pipeline must be
// bit-exact against the unoptimized module — proven lane by lane with
// sim::BatchSimulator on randomized netlists (combinational and
// DFF-bearing, including drive_net feedback loops and ragged final
// batches) and on every generated architecture.  Plus per-pass unit
// behavior (constants through DFFs, buffer/inverter chains, raw-cell CSE,
// DFF sharing, dead sweeps) and the Table I acceptance bar: >= 10% cell
// reduction on the paper's sequential SVM with verification still green.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "pml/arch/mlp_circuit.hpp"
#include "pml/arch/parallel_svm.hpp"
#include "pml/arch/sequential_mlp.hpp"
#include "pml/arch/sequential_svm.hpp"
#include "pml/core/flow.hpp"
#include "pml/ml/multiclass.hpp"
#include "pml/ml/scaler.hpp"
#include "pml/ml/synthetic_datasets.hpp"
#include "pml/opt/cost_model.hpp"
#include "pml/opt/optimizer.hpp"
#include "pml/opt/pass_manager.hpp"
#include "pml/quant/svm_quant.hpp"
#include "pml/sim/batch_sim.hpp"
#include "pml/sim/levelize.hpp"

namespace pml::opt {
namespace {

using netlist::CellType;
using netlist::kConst0;
using netlist::kConst1;
using netlist::Module;
using netlist::NetId;
using quant::QuantizedClassifier;
using quant::QuantizedMlp;
using quant::QuantizedSvm;
using sim::BatchSimulator;

constexpr std::size_t kLanes = BatchSimulator::kLanes;

std::uint64_t xorshift(std::uint64_t& s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}

// --- lane-by-lane equivalence of two modules with identical port lists ------

/// Drive both modules with the same random per-lane stimulus (fresh values
/// every cycle, so DFF state trajectories are exercised, free-running
/// across batches with no reset) and require every output port to agree in
/// every lane after every cycle.  `samples` != multiple of 64 exercises
/// ragged final batches.
void expect_equivalent(const Module& a, const Module& b, std::size_t samples,
                       int cycles, std::uint64_t seed) {
  ASSERT_EQ(a.input_ports().size(), b.input_ports().size());
  ASSERT_EQ(a.output_ports().size(), b.output_ports().size());
  for (std::size_t p = 0; p < a.input_ports().size(); ++p) {
    ASSERT_EQ(a.input_ports()[p].name, b.input_ports()[p].name);
    ASSERT_EQ(a.input_ports()[p].nets.size(), b.input_ports()[p].nets.size());
  }
  for (std::size_t p = 0; p < a.output_ports().size(); ++p) {
    ASSERT_EQ(a.output_ports()[p].name, b.output_ports()[p].name);
    ASSERT_EQ(a.output_ports()[p].nets.size(),
              b.output_ports()[p].nets.size());
  }

  BatchSimulator sim_a(a);
  BatchSimulator sim_b(b);
  std::uint64_t s = seed | 1;
  std::uint64_t lane_values[kLanes];
  const int steps = std::max(cycles, 1);
  for (std::size_t begin = 0; begin < samples; begin += kLanes) {
    const std::size_t count = std::min(kLanes, samples - begin);
    sim_a.set_active_lanes(count);
    sim_b.set_active_lanes(count);
    for (int cyc = 0; cyc < steps; ++cyc) {
      for (std::size_t p = 0; p < a.input_ports().size(); ++p) {
        const std::size_t width = a.input_ports()[p].nets.size();
        const std::uint64_t mask =
            width >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << width) - 1;
        for (std::size_t lane = 0; lane < count; ++lane) {
          lane_values[lane] = xorshift(s) & mask;
        }
        sim_a.set_port(a.input_ports()[p], lane_values, count);
        sim_b.set_port(b.input_ports()[p], lane_values, count);
      }
      sim_a.propagate();
      sim_b.propagate();
      for (std::size_t p = 0; p < a.output_ports().size(); ++p) {
        for (std::size_t lane = 0; lane < count; ++lane) {
          ASSERT_EQ(sim_a.port_unsigned(a.output_ports()[p], lane),
                    sim_b.port_unsigned(b.output_ports()[p], lane))
              << "port '" << a.output_ports()[p].name << "' diverges, sample "
              << begin + lane << ", cycle " << cyc;
        }
      }
      if (cycles > 0) {
        sim_a.step();
        sim_b.step();
      }
    }
  }
}

// --- randomized netlist generator -------------------------------------------

/// A messy but valid module: mixed add_gate/add_gate_raw cells (raw cells
/// dodge creation-time folding/CSE, so constants, duplicates, and
/// buffer/inverter chains survive into the netlist), constant pins,
/// optional DFFs with drive_net feedback loops, and some dead logic.
Module random_module(std::uint64_t seed, bool with_dffs) {
  std::uint64_t s = seed * 0x9E3779B97F4A7C15ull + 1;
  Module m("rand" + std::to_string(seed));
  std::vector<NetId> pool{kConst0, kConst1};

  const int num_ports = 2 + static_cast<int>(xorshift(s) % 3);
  for (int p = 0; p < num_ports; ++p) {
    const int width = 2 + static_cast<int>(xorshift(s) % 3);
    for (NetId n : m.add_input_port("x" + std::to_string(p), width)) {
      pool.push_back(n);
    }
  }

  std::vector<NetId> feedback;
  if (with_dffs) {
    const int loops = 1 + static_cast<int>(xorshift(s) % 3);
    for (int k = 0; k < loops; ++k) {
      const NetId f = m.new_net();
      feedback.push_back(f);
      pool.push_back(m.dff(f, (xorshift(s) & 1) != 0));
    }
  }

  auto pick = [&]() { return pool[xorshift(s) % pool.size()]; };
  const int num_gates = 40 + static_cast<int>(xorshift(s) % 40);
  for (int g = 0; g < num_gates; ++g) {
    const int what = static_cast<int>(xorshift(s) % 100);
    if (with_dffs && what < 8) {
      pool.push_back(m.dff(pick(), (xorshift(s) & 1) != 0));
      continue;
    }
    static constexpr CellType kTypes[] = {
        CellType::kInv,  CellType::kBuf,  CellType::kNand2,
        CellType::kNor2, CellType::kAnd2, CellType::kOr2,
        CellType::kXor2, CellType::kXnor2, CellType::kMux2};
    const CellType type = kTypes[xorshift(s) % 9];
    const NetId a = pick();
    const NetId b = netlist::cell_num_inputs(type) >= 2 ? pick() : netlist::kInvalidNet;
    const NetId sel = netlist::cell_num_inputs(type) >= 3 ? pick() : netlist::kInvalidNet;
    const NetId out = (xorshift(s) & 1) != 0
                          ? m.add_gate_raw(type, a, b, sel)
                          : m.add_gate(type, a, b, sel);
    pool.push_back(out);
  }
  for (const NetId f : feedback) m.drive_net(f, pick());

  // Outputs sample the pool; everything unreferenced is dead on purpose.
  std::vector<NetId> outs;
  for (int k = 0; k < 8; ++k) outs.push_back(pick());
  m.add_output_port("y", outs);
  return m;
}

// --- deterministic model generators (same style as the sim tests) -----------

QuantizedSvm random_svm(int classes, int features, int input_bits,
                        int weight_bits, std::uint64_t seed) {
  QuantizedSvm q;
  q.strategy = ml::MulticlassStrategy::kOneVsRest;
  q.num_classes = classes;
  q.input_format = quant::input_format(input_bits);
  q.weight_format = fixed::FixedFormat{.total_bits = weight_bits,
                                       .frac_bits = weight_bits - 1,
                                       .is_signed = true};
  std::uint64_t s = seed * 0x9E3779B97F4A7C15ull + 1;
  const std::int64_t wmin = q.weight_format.min_code();
  const std::int64_t wmax = q.weight_format.max_code();
  for (int k = 0; k < classes; ++k) {
    QuantizedClassifier c;
    for (int j = 0; j < features; ++j) {
      c.w.push_back(wmin +
                    static_cast<std::int64_t>(
                        xorshift(s) %
                        static_cast<std::uint64_t>(wmax - wmin + 1)));
    }
    c.b = -8 + static_cast<std::int64_t>(xorshift(s) % 17);
    q.classifiers.push_back(std::move(c));
  }
  return q;
}

QuantizedMlp random_mlp(int inputs, int hidden, int outputs, int input_bits,
                        std::uint64_t seed) {
  QuantizedMlp q;
  q.num_inputs = inputs;
  q.num_hidden = hidden;
  q.num_outputs = outputs;
  q.input_format = quant::input_format(input_bits);
  q.w1_format =
      fixed::FixedFormat{.total_bits = 4, .frac_bits = 3, .is_signed = true};
  q.hidden_format =
      fixed::FixedFormat{.total_bits = 4, .frac_bits = 4, .is_signed = false};
  q.w2_format =
      fixed::FixedFormat{.total_bits = 4, .frac_bits = 3, .is_signed = true};
  q.hidden_shift = 3;
  std::uint64_t s = seed ^ 0x5555AAAAull;
  auto rand_w = [&s]() {
    return -8 + static_cast<std::int64_t>(xorshift(s) % 16);
  };
  q.w1.resize(static_cast<std::size_t>(hidden));
  q.b1.resize(static_cast<std::size_t>(hidden));
  for (int i = 0; i < hidden; ++i) {
    for (int j = 0; j < inputs; ++j) {
      q.w1[static_cast<std::size_t>(i)].push_back(rand_w());
    }
    q.b1[static_cast<std::size_t>(i)] = rand_w() * 4;
  }
  q.w2.resize(static_cast<std::size_t>(outputs));
  q.b2.resize(static_cast<std::size_t>(outputs));
  for (int k = 0; k < outputs; ++k) {
    for (int i = 0; i < hidden; ++i) {
      q.w2[static_cast<std::size_t>(k)].push_back(rand_w());
    }
    q.b2[static_cast<std::size_t>(k)] = rand_w() * 2;
  }
  return q;
}

const OptOptions kNoOpt{.enabled = false};

// --- per-pass randomized equivalence ----------------------------------------

using PassFn = PassDelta (*)(Module&);

void check_pass_on_random_modules(PassFn pass) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    for (const bool with_dffs : {false, true}) {
      const Module raw = random_module(seed, with_dffs);
      ASSERT_EQ(raw.validate(), std::nullopt);
      Module optd = raw;
      (void)pass(optd);
      ASSERT_EQ(optd.validate(), std::nullopt) << "seed " << seed;
      // 150 samples = two full batches + a ragged 22-lane batch.
      expect_equivalent(raw, optd, 150, with_dffs ? 5 : 0, seed * 31);
    }
  }
}

TEST(OptPass, ConstantPropagationIsBitExact) {
  check_pass_on_random_modules(&propagate_constants);
}

TEST(OptPass, BufferChainCollapseIsBitExact) {
  check_pass_on_random_modules(&collapse_buffer_chains);
}

TEST(OptPass, StructuralHashIsBitExact) {
  check_pass_on_random_modules(&hash_structural);
}

TEST(OptPass, DeadSweepIsBitExact) {
  check_pass_on_random_modules(&sweep_dead);
}

TEST(OptPass, RebalanceTreesIsBitExact) {
  check_pass_on_random_modules(&rebalance_trees);
}

TEST(OptPass, RebalanceTreesBalancesChainsWithoutAddingCells) {
  // A skewed 8-leaf AND chain: depth 7 -> 3, same cell count, bit-exact.
  Module m("t");
  const auto x = m.add_input_port("x", 8);
  NetId n = x[0];
  for (int i = 1; i < 8; ++i) {
    n = m.add_gate_raw(CellType::kAnd2, n, x[static_cast<std::size_t>(i)]);
  }
  m.add_output_port("y", {n});
  Module raw = m;
  const std::size_t cells_before = m.cells().size();

  const PassDelta delta = rebalance_trees(m);
  EXPECT_EQ(delta.cells_added, cells_before);  // rebuilt one-for-one
  EXPECT_EQ(delta.cells_removed, cells_before);
  EXPECT_EQ(m.cells().size(), cells_before);
  ASSERT_EQ(m.validate(), std::nullopt);

  // Unit depth of the output net must now be ceil(log2(8)) = 3.
  const auto lv = sim::levelize(m);
  EXPECT_EQ(lv.max_depth, 3u);
  expect_equivalent(raw, m, 150, 0, 777);

  // Idempotent: a balanced tree offers no strict improvement.
  const PassDelta again = rebalance_trees(m);
  EXPECT_FALSE(again.changed());
}

TEST(OptPass, RebalanceSkipsMultiFanoutInteriors) {
  // The interior AND feeds a second output: breaking it apart would
  // change observable structure, so only trees over single-fanout
  // interiors may be rebuilt.
  Module m("t");
  const auto x = m.add_input_port("x", 4);
  const NetId i1 = m.add_gate_raw(CellType::kAnd2, x[0], x[1]);
  const NetId i2 = m.add_gate_raw(CellType::kAnd2, i1, x[2]);
  const NetId i3 = m.add_gate_raw(CellType::kAnd2, i2, x[3]);
  m.add_output_port("y", {i3});
  m.add_output_port("tap", {i2});  // i2 is multi-fanout: a tree leaf now
  Module raw = m;
  const PassDelta delta = rebalance_trees(m);
  // The only candidate tree (root i3) has leaves {i2, x3}: too small.
  EXPECT_FALSE(delta.changed());
  expect_equivalent(raw, m, 100, 0, 13);
}

TEST(OptPipeline, FixpointIsBitExactOnRandomModules) {
  for (const std::uint64_t seed : {11ull, 12ull, 13ull, 14ull, 15ull}) {
    for (const bool with_dffs : {false, true}) {
      const Module raw = random_module(seed, with_dffs);
      Module optd = raw;
      const OptReport report = optimize(optd);
      ASSERT_EQ(optd.validate(), std::nullopt) << "seed " << seed;
      EXPECT_LE(report.after.num_cells, report.before.num_cells);
      expect_equivalent(raw, optd, 150, with_dffs ? 6 : 0, seed * 17);
    }
  }
}

// --- per-pass unit behavior ---------------------------------------------------

TEST(OptPass, ConstantsPropagateThroughGatesAndDffs) {
  Module m("t");
  const auto x = m.add_input_port("x", 2);
  // AND(x0, 0) = 0, OR(0, x1) = x1 — raw gates dodge creation folding.
  const NetId g = m.add_gate_raw(CellType::kAnd2, x[0], kConst0);
  const NetId y = m.add_gate_raw(CellType::kOr2, g, x[1]);
  // DFF whose D is tied to its power-on value never changes...
  const NetId q0 = m.dff(kConst0, false);
  // ...and a DFF fed from a constant-q0 DFF collapses on the next sweep.
  const NetId q1 = m.dff(q0, false);
  m.add_output_port("y", {y, q1});

  Module raw = m;
  const OptReport report = optimize(m);
  EXPECT_EQ(m.stats().num_cells, 0u);  // everything melted into wires
  EXPECT_EQ(m.stats().num_dffs, 0u);
  EXPECT_GE(report.iterations, 1);
  expect_equivalent(raw, m, 100, 4, 9);
}

TEST(OptPass, ConstantPropagationFoldsSelfLoopDff) {
  Module m("t");
  const auto x = m.add_input_port("x", 1);
  const NetId f = m.new_net();
  const NetId q = m.dff(f, true);
  m.drive_net(f, q);  // D == Q: holds the power-on 1 forever
  m.add_output_port("y", {m.add_gate_raw(CellType::kAnd2, x[0], q)});
  Module raw = m;
  (void)optimize(m);
  EXPECT_EQ(m.stats().num_dffs, 0u);
  EXPECT_EQ(m.stats().num_cells, 0u);  // AND(x, 1) = x
  expect_equivalent(raw, m, 100, 3, 5);
}

TEST(OptPass, BufferAndInverterChainsCollapse) {
  Module m("t");
  const auto x = m.add_input_port("x", 1);
  NetId n = x[0];
  for (int i = 0; i < 4; ++i) n = m.add_gate_raw(CellType::kBuf, n);
  for (int i = 0; i < 4; ++i) n = m.add_gate_raw(CellType::kInv, n);
  m.add_output_port("y", {n});
  Module raw = m;
  const OptReport report = optimize(m);
  EXPECT_EQ(m.stats().num_cells, 0u);  // even parity: y == x
  EXPECT_GT(report.cells_removed(), 0u);
  expect_equivalent(raw, m, 100, 0, 21);
}

TEST(OptPass, InversionPushThroughAbsorbsSingleFanoutInverters) {
  Module m("t");
  const auto x = m.add_input_port("x", 2);
  // INV(NAND(a,b)) with single fanout retypes to AND(a,b).
  const NetId g = m.add_gate_raw(CellType::kNand2, x[0], x[1]);
  const NetId y = m.add_gate_raw(CellType::kInv, g);
  m.add_output_port("y", {y});
  Module raw = m;
  (void)optimize(m);
  EXPECT_EQ(m.stats().num_cells, 1u);
  EXPECT_EQ(m.cells()[0].type, CellType::kAnd2);
  expect_equivalent(raw, m, 100, 0, 33);
}

TEST(OptPass, StructuralHashMergesRawDuplicatesAndDffs) {
  Module m("t");
  const auto x = m.add_input_port("x", 3);
  // Identical raw MUX cells (creation-time CSE skipped on purpose).
  const NetId m1 = m.add_gate_raw(CellType::kMux2, x[0], x[1], x[2]);
  const NetId m2 = m.add_gate_raw(CellType::kMux2, x[0], x[1], x[2]);
  // DFFs sharing (D, init) merge; a differing init must survive.
  const NetId qa = m.dff(x[0], false);
  const NetId qb = m.dff(x[0], false);
  const NetId qc = m.dff(x[0], true);
  m.add_output_port("y", {m1, m2, qa, qb, qc});
  Module raw = m;
  (void)optimize(m);
  EXPECT_EQ(m.stats().num_cells, 3u);  // one MUX + two DFFs
  EXPECT_EQ(m.stats().num_dffs, 2u);
  expect_equivalent(raw, m, 100, 4, 41);
}

TEST(OptPass, DeadSweepRemovesUnreadLogicAndKeepsPorts) {
  Module m("t");
  const auto x = m.add_input_port("x", 2);
  const NetId live = m.add_gate_raw(CellType::kXor2, x[0], x[1]);
  // A dead cone incl. a dead flop: nothing downstream reads it.
  const NetId d1 = m.add_gate_raw(CellType::kAnd2, x[0], x[1]);
  const NetId d2 = m.add_gate_raw(CellType::kOr2, d1, x[0]);
  (void)m.dff(d2, false);
  m.add_output_port("y", {live});
  Module raw = m;
  const std::size_t nets_before = m.num_nets();
  PassDelta delta = sweep_dead(m);
  EXPECT_EQ(delta.cells_removed, 3u);
  EXPECT_EQ(delta.dffs_removed, 1u);
  EXPECT_GT(delta.nets_removed, 0u);
  EXPECT_LT(m.num_nets(), nets_before);
  EXPECT_EQ(m.input_ports().size(), 1u);   // unread PI bits survive
  EXPECT_EQ(m.input_ports()[0].nets.size(), 2u);
  ASSERT_EQ(m.validate(), std::nullopt);
  expect_equivalent(raw, m, 100, 0, 57);
}

// --- pipeline properties ------------------------------------------------------

TEST(OptPipeline, DisabledIsANoOp) {
  Module m = random_module(3, true);
  const Module before = m;
  const OptReport report = optimize(m, kNoOpt);
  EXPECT_EQ(report.deltas.size(), 0u);
  EXPECT_EQ(m.stats().num_cells, before.stats().num_cells);
  EXPECT_EQ(m.num_nets(), before.num_nets());
}

TEST(OptPipeline, DeterministicAcrossRuns) {
  for (const std::uint64_t seed : {5ull, 6ull}) {
    Module a = random_module(seed, true);
    Module b = random_module(seed, true);
    (void)optimize(a);
    (void)optimize(b);
    ASSERT_EQ(a.cells().size(), b.cells().size());
    for (std::size_t i = 0; i < a.cells().size(); ++i) {
      EXPECT_EQ(a.cells()[i].type, b.cells()[i].type);
      EXPECT_EQ(a.cells()[i].out, b.cells()[i].out);
      EXPECT_EQ(a.cells()[i].in[0], b.cells()[i].in[0]);
      EXPECT_EQ(a.cells()[i].in[1], b.cells()[i].in[1]);
      EXPECT_EQ(a.cells()[i].group, b.cells()[i].group);
    }
  }
}

TEST(OptPipeline, ReportAccountingIsConsistent) {
  Module m = random_module(7, true);
  const OptReport report = optimize(m);
  std::size_t removed = 0;
  for (const PassDelta& d : report.deltas) removed += d.cells_removed;
  EXPECT_EQ(removed, report.cells_removed());
  std::size_t by_pass = 0;
  for (const PassDelta& d : report.totals_by_pass()) {
    by_pass += d.cells_removed;
  }
  EXPECT_EQ(by_pass, report.cells_removed());
  EXPECT_EQ(report.after.num_cells, m.stats().num_cells);
}

// --- generated architectures: raw vs optimized --------------------------------

TEST(OptPipeline, SequentialSvmRawVsOptimized) {
  for (const std::uint64_t seed : {1ull, 2ull}) {
    const QuantizedSvm q =
        random_svm(3 + static_cast<int>(seed % 3), 4, 3, 4, seed);
    const auto raw = arch::build_sequential_svm(q, kNoOpt);
    const auto optd = arch::build_sequential_svm(q);
    EXPECT_LT(optd.module.stats().num_cells, raw.module.stats().num_cells);
    expect_equivalent(raw.module, optd.module, 150,
                      raw.cycles_per_inference, seed * 91);
  }
}

TEST(OptPipeline, ParallelSvmRawVsOptimized) {
  const QuantizedSvm q = random_svm(4, 3, 3, 4, 11);
  arch::ParallelSvmOptions raw_opts;
  raw_opts.opt = kNoOpt;
  const auto raw = arch::build_parallel_svm(q, raw_opts);
  const auto optd = arch::build_parallel_svm(q);
  EXPECT_LE(optd.module.stats().num_cells, raw.module.stats().num_cells);
  expect_equivalent(raw.module, optd.module, 150, 0, 77);
}

TEST(OptPipeline, MlpRawVsOptimized) {
  const QuantizedMlp q = random_mlp(3, 4, 3, 3, 21);
  const auto raw = arch::build_mlp_circuit(q, kNoOpt);
  const auto optd = arch::build_mlp_circuit(q);
  EXPECT_LE(optd.module.stats().num_cells, raw.module.stats().num_cells);
  expect_equivalent(raw.module, optd.module, 150, 0, 13);
}

TEST(OptPipeline, SequentialMlpRawVsOptimized) {
  const QuantizedMlp q = random_mlp(3, 3, 3, 3, 35);
  const auto raw = arch::build_sequential_mlp(q, kNoOpt);
  const auto optd = arch::build_sequential_mlp(q);
  EXPECT_LT(optd.module.stats().num_cells, raw.module.stats().num_cells);
  expect_equivalent(raw.module, optd.module, 150,
                    raw.cycles_per_inference, 3);
}

// --- pass registry and flow recipes -------------------------------------------

TEST(PassRegistry, FindsEveryRegisteredPassByName) {
  for (const Pass& pass : pass_registry()) {
    const Pass& found = find_pass(pass.name);
    EXPECT_EQ(found.name, pass.name);
    EXPECT_EQ(found.run, pass.run);
  }
  EXPECT_GE(pass_registry().size(), 5u);  // incl. rebalance-trees
}

TEST(PassRegistry, UnknownPassNameThrows) {
  EXPECT_THROW((void)find_pass("no-such-pass"), std::invalid_argument);
  EXPECT_THROW(PassManager(FlowRecipe{"bad", {"no-such-pass"}, false}),
               std::invalid_argument);
}

TEST(FlowRecipes, RoundTripByName) {
  for (const FlowRecipe& flow : standard_flows()) {
    const FlowRecipe& back = flow_recipe(flow.name);
    EXPECT_EQ(back.name, flow.name);
    EXPECT_EQ(back.passes, flow.passes);
    EXPECT_EQ(back.cost_driven, flow.cost_driven);
  }
  // "area" must remain the PR 4 pipeline, "energy" the CSE+DCE-only
  // composition, and "none" empty.
  EXPECT_EQ(flow_recipe("area").passes,
            (std::vector<std::string>{"constant-propagation",
                                      "buffer-chain-collapse",
                                      "structural-hash", "dead-sweep"}));
  EXPECT_EQ(flow_recipe("energy").passes,
            (std::vector<std::string>{"structural-hash", "dead-sweep"}));
  EXPECT_TRUE(flow_recipe("none").passes.empty());
  EXPECT_TRUE(flow_recipe("balanced").cost_driven);
}

TEST(FlowRecipes, UnknownFlowNameThrows) {
  EXPECT_THROW((void)flow_recipe("no-such-flow"), std::invalid_argument);
  Module m = random_module(3, true);
  OptOptions opts;
  opts.flow = "no-such-flow";
  EXPECT_THROW((void)optimize(m, opts), std::invalid_argument);
  // "best" is a selection policy, not a recipe.
  EXPECT_THROW((void)flow_recipe("best"), std::invalid_argument);
}

TEST(FlowRecipes, EveryRecipeIsBitExactOnRandomModules) {
  for (const FlowRecipe& flow : standard_flows()) {
    for (const std::uint64_t seed : {21ull, 22ull}) {
      const Module raw = random_module(seed, true);
      Module optd = raw;
      OptOptions opts;
      opts.flow = flow.name;
      const OptReport report = optimize(optd, opts);
      EXPECT_EQ(report.recipe, flow.name);
      ASSERT_EQ(optd.validate(), std::nullopt)
          << flow.name << " seed " << seed;
      expect_equivalent(raw, optd, 150, 6, seed * 7 + 1);
    }
  }
}

// --- cost-driven accept/reject ------------------------------------------------

namespace {

/// Adversarial model: rewards *more* cells, so every shrinking pass must
/// be rejected by a cost-driven recipe.
class PreferMoreCells final : public CostModel {
 public:
  [[nodiscard]] double cost(const netlist::Module& m) const override {
    return 1e9 - static_cast<double>(m.cells().size());
  }
  [[nodiscard]] std::string name() const override { return "prefer-more"; }
};

}  // namespace

TEST(PassManagerCost, RejectsApplicationsTheModelDislikes) {
  Module m = random_module(9, true);
  const Module before = m;
  const PreferMoreCells adversarial;
  const OptReport report =
      PassManager(flow_recipe("balanced"), {}, &adversarial).run(m);
  // Shrinking applications were rejected and reverted...
  EXPECT_FALSE(report.rejected.empty());
  // ...and whatever was accepted never reduced the cell count.
  EXPECT_GE(m.cells().size(), before.cells().size());
  for (const PassDelta& d : report.deltas) {
    EXPECT_GE(d.cells_added + d.cells_retyped, d.cells_removed);
  }
}

TEST(PassManagerCost, AcceptRejectTraceIsDeterministic) {
  const cells::CellLibrary lib = cells::CellLibrary::egfet();
  for (const std::uint64_t seed : {31ull, 32ull}) {
    Module a = random_module(seed, true);
    Module b = random_module(seed, true);
    // A switching-energy model over a deterministic probe.
    ProbeWorkload probe;
    probe.cycles_per_inference = 2;
    std::uint64_t s = seed | 1;
    for (int i = 0; i < 16; ++i) {
      std::vector<std::uint64_t> row;
      for (const auto& port : a.input_ports()) {
        const std::uint64_t mask =
            (std::uint64_t{1} << port.nets.size()) - 1;
        row.push_back(xorshift(s) & mask);
      }
      probe.samples.push_back(std::move(row));
    }
    const SwitchingEnergyCost cost(lib, probe);
    const OptReport ra =
        PassManager(flow_recipe("balanced"), {}, &cost).run(a);
    const OptReport rb =
        PassManager(flow_recipe("balanced"), {}, &cost).run(b);
    EXPECT_EQ(ra.rejected, rb.rejected);
    EXPECT_EQ(ra.deltas.size(), rb.deltas.size());
    EXPECT_DOUBLE_EQ(ra.cost_after, rb.cost_after);
    ASSERT_EQ(a.cells().size(), b.cells().size());
    for (std::size_t i = 0; i < a.cells().size(); ++i) {
      EXPECT_EQ(a.cells()[i].type, b.cells()[i].type);
      EXPECT_EQ(a.cells()[i].out, b.cells()[i].out);
    }
    // Cost never worsens along an accepted trajectory (tolerance 0).
    EXPECT_LE(ra.cost_after, ra.cost_before);
  }
}

TEST(PassManagerCost, BestFlowPicksTheCheapestRecipe) {
  Module m = random_module(41, true);
  const CellCountCost cell_count;
  Module best_m = m;
  const OptReport best =
      PassManager::run_best(best_m, standard_flows(), cell_count);
  // Under the cell-count model the winner can never have more cells than
  // any single recipe's result — including "area".
  Module area_m = m;
  OptOptions area_opts;
  area_opts.flow = "area";
  (void)optimize(area_m, area_opts);
  EXPECT_LE(best_m.cells().size(), area_m.cells().size());
  EXPECT_FALSE(best.recipe.empty());
  expect_equivalent(m, best_m, 150, 5, 99);
}

// --- growth-safe report accounting --------------------------------------------

TEST(OptReportGrowth, UnderflowGuardsAndSignedDelta) {
  OptReport r;
  r.before.num_cells = 5;
  r.before.num_dffs = 2;
  r.after.num_cells = 9;  // a restructuring pass grew the module
  r.after.num_dffs = 3;
  EXPECT_EQ(r.cells_removed(), 0u);  // clamped, no size_t wraparound
  EXPECT_EQ(r.dffs_removed(), 0u);
  EXPECT_EQ(r.cell_delta(), 4);
  EXPECT_LT(r.cell_reduction(), 0.0);  // sign-correct for growth
  r.after.num_cells = 3;
  r.after.num_dffs = 1;
  EXPECT_EQ(r.cells_removed(), 2u);
  EXPECT_EQ(r.dffs_removed(), 1u);
  EXPECT_EQ(r.cell_delta(), -2);
  EXPECT_GT(r.cell_reduction(), 0.0);
}

TEST(OptReportGrowth, AddedCellsBalanceTheBooks) {
  // On a chain-heavy module the balanced recipe exercises rebalance
  // (adds cells) alongside the shrinking passes; the stats identity
  //   before - after == sum(removed) - sum(added)
  // must hold across all of it.
  Module m("t");
  const auto x = m.add_input_port("x", 8);
  NetId n = x[0];
  for (int i = 1; i < 8; ++i) {
    n = m.add_gate_raw(CellType::kXor2, n, x[static_cast<std::size_t>(i)]);
  }
  m.add_output_port("y", {n});
  OptOptions opts;
  opts.flow = "balanced";
  const OptReport report = optimize(m, opts);
  std::ptrdiff_t removed = 0, added = 0;
  for (const PassDelta& d : report.deltas) {
    removed += static_cast<std::ptrdiff_t>(d.cells_removed);
    added += static_cast<std::ptrdiff_t>(d.cells_added);
  }
  EXPECT_EQ(static_cast<std::ptrdiff_t>(report.before.num_cells) -
                static_cast<std::ptrdiff_t>(report.after.num_cells),
            removed - added);
  EXPECT_GT(added, 0);  // the chain really was rebuilt
}

// --- the Table I acceptance bar ----------------------------------------------

TEST(OptPipeline, TableOneSequentialSvmReducesTenPercentBitExact) {
  // The paper's sequential SVM on the Cardio profile (the bench_batch_sim
  // circuit): >= 10% of cells must melt, and the optimized module must
  // still verify bit-exact against the quantized software model over the
  // real workload.
  const ml::Dataset raw_ds = ml::make_uci_like(ml::UciProfile::kCardio);
  const ml::Split split =
      ml::stratified_split(raw_ds, 0.8, ml::kDefaultDataSeed ^ 0x5eed);
  ml::MinMaxScaler scaler;
  scaler.fit(split.train);
  const ml::Dataset train = scaler.transform(split.train);
  const ml::Dataset test = scaler.transform(split.test);
  ml::MulticlassTrainOptions topts;
  topts.base.seed = 7;
  const auto model = ml::train_one_vs_rest(train, topts);
  const auto q = quant::quantize_svm(model, 4, 5);

  const auto raw = arch::build_sequential_svm(q, kNoOpt);
  Module optimized = raw.module;
  const OptReport report = optimize(optimized);

  EXPECT_GE(report.cell_reduction(), 0.10)
      << report.before.num_cells << " -> " << report.after.num_cells;

  const core::CircuitWorkload wl = core::make_svm_workload(q, test);
  for (const Module* m :
       std::initializer_list<const Module*>{&raw.module, &optimized}) {
    const core::VerifyResult vr =
        core::verify_workload(*m, raw.cycles_per_inference, wl, {});
    EXPECT_TRUE(vr.ok()) << vr.mismatches << " mismatches";
  }
  expect_equivalent(raw.module, optimized, 150, raw.cycles_per_inference,
                    1234);
}

}  // namespace
}  // namespace pml::opt
