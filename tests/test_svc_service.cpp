// Job-queue behavior of svc::SweepService: async submit/wait, in-flight
// dedup, error caching, the sweep_flows driver's equivalence with
// core::sweep_flows, and the stats surface.

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "pml/arch/sequential_svm.hpp"
#include "pml/core/flow.hpp"
#include "pml/quant/svm_quant.hpp"
#include "pml/svc/sweep_service.hpp"

namespace pml::svc {
namespace {

quant::QuantizedSvm tiny_model() {
  quant::QuantizedSvm q;
  q.strategy = ml::MulticlassStrategy::kOneVsRest;
  q.num_classes = 3;
  q.input_format = quant::input_format(3);
  q.weight_format =
      fixed::FixedFormat{.total_bits = 4, .frac_bits = 3, .is_signed = true};
  q.classifiers = {quant::QuantizedClassifier{{3, -2}, 1},
                   quant::QuantizedClassifier{{-1, 4}, 0},
                   quant::QuantizedClassifier{{2, 2}, -3}};
  return q;
}

std::shared_ptr<core::CircuitWorkload> tiny_workload(
    const quant::QuantizedSvm& q) {
  auto wl = std::make_shared<core::CircuitWorkload>();
  for (std::int64_t a = 0; a <= 7; ++a) {
    for (std::int64_t b = 0; b <= 7; ++b) {
      wl->feature_codes.push_back({a, b});
      wl->expected_class.push_back(q.predict_codes({a, b}));
    }
  }
  return wl;
}

SweepRequest tiny_request() {
  const auto q = tiny_model();
  auto circuit = arch::build_sequential_svm(q);
  SweepRequest req;
  req.module =
      std::make_shared<const netlist::Module>(std::move(circuit.module));
  req.cycles_per_inference = circuit.cycles_per_inference;
  req.workload = tiny_workload(q);
  return req;
}

TEST(SvcService, SubmitThenWaitProducesVerifiedReport) {
  const auto lib = cells::CellLibrary::egfet();
  SweepService service(lib);
  const auto req = tiny_request();
  const SweepTicket ticket = service.submit(req);
  EXPECT_EQ(ticket.key, SweepService::cache_key(req));
  const core::HardwareReport rep = service.wait(ticket);
  EXPECT_TRUE(rep.verified);
  EXPECT_EQ(rep.verified_samples, req.workload->feature_codes.size());
  EXPECT_GT(rep.energy_mj, 0.0);
}

TEST(SvcService, IdenticalSubmissionsShareOneEvaluation) {
  const auto lib = cells::CellLibrary::egfet();
  SweepService service(lib);
  const auto req = tiny_request();
  // Both tickets are issued before either job can be waited on, so the
  // second submit either dedups against the in-flight job or hits the
  // already-completed cache entry — never evaluates twice.
  const SweepTicket t1 = service.submit(req);
  const SweepTicket t2 = service.submit(req);
  EXPECT_EQ(t1.key, t2.key);
  const core::HardwareReport r1 = service.wait(t1);
  const core::HardwareReport r2 = service.wait(t2);
  EXPECT_EQ(r1.energy_mj, r2.energy_mj);

  const SweepStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.evaluated, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache_hits + stats.inflight_deduped, 1u);
  EXPECT_EQ(stats.cache_entries, 1u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST(SvcService, FailedEvaluationIsCachedAndRethrown) {
  const auto lib = cells::CellLibrary::egfet();
  SweepService service(lib);
  auto req = tiny_request();
  auto bad = std::make_shared<core::CircuitWorkload>(*req.workload);
  bad->expected_class[5] = (bad->expected_class[5] + 1) % 3;
  req.workload = std::move(bad);

  EXPECT_THROW((void)service.evaluate(req), std::runtime_error);
  // The failure is a cached outcome, not a retry: same exception again,
  // no second evaluation.
  EXPECT_THROW((void)service.evaluate(req), std::runtime_error);
  const SweepStats stats = service.stats();
  EXPECT_EQ(stats.evaluated, 1u);
  EXPECT_EQ(stats.errors, 1u);
  EXPECT_GE(stats.cache_hits, 1u);
}

TEST(SvcService, InvalidModuleRejectedAtSubmit) {
  const auto lib = cells::CellLibrary::egfet();
  SweepService service(lib);
  auto broken = std::make_shared<netlist::Module>("broken");
  const auto in = broken->add_input_port("x0", 1);
  // An undriven fresh net in the output port: Module::validate() flags it.
  broken->add_output_port("class", {broken->new_net()});
  SweepRequest req;
  req.module = broken;
  req.workload = tiny_workload(tiny_model());
  EXPECT_THROW((void)service.submit(req), std::runtime_error);
  (void)in;
}

TEST(SvcService, NullRequestRejected) {
  const auto lib = cells::CellLibrary::egfet();
  SweepService service(lib);
  EXPECT_THROW((void)service.submit(SweepRequest{}), std::invalid_argument);
  EXPECT_THROW((void)service.wait(SweepTicket{0xdeadbeefULL}),
               std::invalid_argument);
}

TEST(SvcService, SweepFlowsMatchesCoreSweep) {
  const auto lib = cells::CellLibrary::egfet();
  const auto req = tiny_request();
  const std::vector<std::string> flows = {"none", "area", "energy"};
  core::EvaluateOptions base;

  const auto core_rows = core::sweep_flows(
      *req.module, req.cycles_per_inference, lib, *req.workload, base, flows);

  SweepService service(lib);
  const auto svc_rows = service.sweep_flows(
      req.module, req.cycles_per_inference, req.workload, base, flows);

  ASSERT_EQ(svc_rows.size(), core_rows.size());
  for (std::size_t i = 0; i < core_rows.size(); ++i) {
    EXPECT_EQ(svc_rows[i].flow, core_rows[i].flow);
    EXPECT_EQ(svc_rows[i].hw.opt_flow, core_rows[i].hw.opt_flow);
    EXPECT_EQ(svc_rows[i].hw.num_cells, core_rows[i].hw.num_cells);
    EXPECT_EQ(svc_rows[i].hw.energy_mj, core_rows[i].hw.energy_mj);
    EXPECT_EQ(svc_rows[i].hw.area_cm2, core_rows[i].hw.area_cm2);
    EXPECT_EQ(svc_rows[i].hw.functional_transitions,
              core_rows[i].hw.functional_transitions);
    EXPECT_EQ(svc_rows[i].hw.glitch_transitions,
              core_rows[i].hw.glitch_transitions);
  }

  // A warm re-sweep is answered entirely from the cache.
  const SweepStats before = service.stats();
  const auto warm = service.sweep_flows(req.module, req.cycles_per_inference,
                                        req.workload, base, flows);
  const SweepStats after = service.stats();
  ASSERT_EQ(warm.size(), flows.size());
  EXPECT_EQ(after.evaluated, before.evaluated);
  EXPECT_EQ(after.cache_hits, before.cache_hits + flows.size());
}

TEST(SvcService, MultiWorkerPoolCompletesAllJobs) {
  const auto lib = cells::CellLibrary::egfet();
  SweepService::Options opts;
  opts.num_workers = 2;
  SweepService service(lib, opts);
  const auto req = tiny_request();
  const auto rows = service.sweep_flows(req.module, req.cycles_per_inference,
                                        req.workload, core::EvaluateOptions{});
  ASSERT_EQ(rows.size(), 4u);
  for (const auto& row : rows) EXPECT_TRUE(row.hw.verified);
  EXPECT_EQ(service.stats().evaluated, 4u);
}

}  // namespace
}  // namespace pml::svc
