// Bespoke MLP circuit (the TC'23 baseline): exhaustive bit-exactness with
// the integer model, including ReLU and saturation corner cases.

#include <gtest/gtest.h>

#include <string>

#include "pml/arch/mlp_circuit.hpp"
#include "pml/fixed/csd.hpp"
#include "pml/sim/cycle_sim.hpp"

namespace pml::arch {
namespace {

using quant::QuantizedMlp;

QuantizedMlp tiny_mlp(int inputs, int hidden, int outputs, int input_bits,
                      std::uint64_t seed) {
  QuantizedMlp q;
  q.num_inputs = inputs;
  q.num_hidden = hidden;
  q.num_outputs = outputs;
  q.input_format = quant::input_format(input_bits);
  q.w1_format =
      fixed::FixedFormat{.total_bits = 4, .frac_bits = 3, .is_signed = true};
  q.hidden_format =
      fixed::FixedFormat{.total_bits = 4, .frac_bits = 4, .is_signed = false};
  q.w2_format =
      fixed::FixedFormat{.total_bits = 4, .frac_bits = 3, .is_signed = true};
  q.hidden_shift = 3;
  std::uint64_t s = seed ^ 0x5555AAAAull;
  auto next = [&s]() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  };
  auto rand_w = [&next]() {
    return -8 + static_cast<std::int64_t>(next() % 16);
  };
  q.w1.resize(static_cast<std::size_t>(hidden));
  q.b1.resize(static_cast<std::size_t>(hidden));
  for (int i = 0; i < hidden; ++i) {
    for (int j = 0; j < inputs; ++j) {
      q.w1[static_cast<std::size_t>(i)].push_back(rand_w());
    }
    q.b1[static_cast<std::size_t>(i)] = rand_w() * 4;
  }
  q.w2.resize(static_cast<std::size_t>(outputs));
  q.b2.resize(static_cast<std::size_t>(outputs));
  for (int k = 0; k < outputs; ++k) {
    for (int i = 0; i < hidden; ++i) {
      q.w2[static_cast<std::size_t>(k)].push_back(rand_w());
    }
    q.b2[static_cast<std::size_t>(k)] = rand_w() * 2;
  }
  return q;
}

int classify(sim::CycleSimulator& sim, const std::vector<std::int64_t>& xq) {
  for (std::size_t j = 0; j < xq.size(); ++j) {
    sim.set_port("x" + std::to_string(j), static_cast<std::uint64_t>(xq[j]));
  }
  sim.propagate();
  return static_cast<int>(sim.port_unsigned("class"));
}

class MlpShape : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MlpShape, BitExactExhaustive) {
  const auto [inputs, hidden, outputs] = GetParam();
  const QuantizedMlp q =
      tiny_mlp(inputs, hidden, outputs, 2,
               static_cast<std::uint64_t>(inputs * 31 + hidden * 7 + outputs));
  MlpCircuit circuit = build_mlp_circuit(q);
  ASSERT_EQ(circuit.module.validate(), std::nullopt);
  EXPECT_EQ(circuit.module.stats().num_dffs, 0u);
  sim::CycleSimulator sim(circuit.module);

  const std::int64_t xmax = q.input_format.max_code();
  std::vector<std::int64_t> xq(static_cast<std::size_t>(inputs), 0);
  std::size_t total = 1;
  for (int j = 0; j < inputs; ++j) {
    total *= static_cast<std::size_t>(xmax + 1);
  }
  for (std::size_t idx = 0; idx < total; ++idx) {
    std::size_t rest = idx;
    for (int j = 0; j < inputs; ++j) {
      xq[static_cast<std::size_t>(j)] =
          static_cast<std::int64_t>(rest % static_cast<std::size_t>(xmax + 1));
      rest /= static_cast<std::size_t>(xmax + 1);
    }
    EXPECT_EQ(classify(sim, xq), q.predict_codes(xq)) << "input " << idx;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MlpShape,
    ::testing::Values(std::make_tuple(2, 2, 2), std::make_tuple(3, 2, 3),
                      std::make_tuple(2, 3, 4), std::make_tuple(4, 2, 2),
                      std::make_tuple(2, 4, 3)));

TEST(MlpCircuit, SaturationPathExercised) {
  // Large positive weights force hidden saturation for big inputs; the
  // circuit must clamp exactly like the model.
  QuantizedMlp q = tiny_mlp(2, 2, 2, 3, 1);
  q.w1 = {{7, 7}, {7, 7}};
  q.b1 = {20, 20};
  q.hidden_shift = 1;  // small shift -> codes exceed 4-bit range
  MlpCircuit circuit = build_mlp_circuit(q);
  sim::CycleSimulator sim(circuit.module);
  bool saturated_case_seen = false;
  for (std::int64_t a = 0; a <= 7; ++a) {
    for (std::int64_t b = 0; b <= 7; ++b) {
      const auto h = q.hidden_codes({a, b});
      if (h[0] == q.hidden_format.max_code()) saturated_case_seen = true;
      EXPECT_EQ(classify(sim, {a, b}), q.predict_codes({a, b}));
    }
  }
  EXPECT_TRUE(saturated_case_seen) << "test must cover the clamp branch";
}

TEST(MlpCircuit, ReluPathExercised) {
  // Strongly negative biases force ReLU zeroes.
  QuantizedMlp q = tiny_mlp(2, 2, 2, 3, 2);
  q.b1 = {-200, -200};
  MlpCircuit circuit = build_mlp_circuit(q);
  sim::CycleSimulator sim(circuit.module);
  for (std::int64_t a = 0; a <= 7; ++a) {
    const auto h = q.hidden_codes({a, 7 - a});
    EXPECT_EQ(h[0], 0);
    EXPECT_EQ(classify(sim, {a, 7 - a}), q.predict_codes({a, 7 - a}));
  }
}

TEST(ApproximateMlp, TruncatesWeightCsd) {
  QuantizedMlp q = tiny_mlp(3, 3, 3, 3, 3);
  q.w1 = {{7, -7, 5}, {5, 7, -5}, {-7, 5, 7}};
  const QuantizedMlp approx = approximate_mlp_csd(q, 1);
  for (const auto& row : approx.w1) {
    for (const auto w : row) {
      EXPECT_LE(fixed::csd_cost(w), 1);
    }
  }
  // Approximate circuit matches the approximate model.
  MlpCircuit circuit = build_mlp_circuit(approx);
  sim::CycleSimulator sim(circuit.module);
  for (std::int64_t a = 0; a <= 7; ++a) {
    EXPECT_EQ(classify(sim, {a, 3, 7 - a}), approx.predict_codes({a, 3, 7 - a}));
  }
}

}  // namespace
}  // namespace pml::arch
