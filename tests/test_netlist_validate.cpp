// Structural validation: undriven nets, multiple drivers, combinational
// cycles, constant/PI driving.

#include <gtest/gtest.h>

#include "pml/netlist/module.hpp"

namespace pml::netlist {
namespace {

TEST(Validate, CleanModulePasses) {
  Module m;
  const auto p = m.add_input_port("p", 2);
  const auto x = m.and2(p[0], p[1]);
  m.add_output_port("y", {x});
  EXPECT_EQ(m.validate(), std::nullopt);
}

TEST(Validate, EmptyModulePasses) {
  Module m;
  EXPECT_EQ(m.validate(), std::nullopt);
}

TEST(Validate, UndrivenCellInput) {
  Module m;
  const auto dangling = m.new_net();
  const auto p = m.add_input_port("p", 1);
  (void)m.and2(p[0], dangling);
  const auto err = m.validate();
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("undriven"), std::string::npos);
}

TEST(Validate, UndrivenOutputPort) {
  Module m;
  m.add_output_port("y", {m.new_net()});
  const auto err = m.validate();
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("output port"), std::string::npos);
}

TEST(Validate, MultipleDrivers) {
  Module m;
  const auto p = m.add_input_port("p", 2);
  const auto x = m.add_gate_raw(CellType::kAnd2, p[0], p[1]);
  m.drive_net(x, p[0]);  // second driver
  const auto err = m.validate();
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("multiple drivers"), std::string::npos);
}

TEST(Validate, CombinationalCycle) {
  Module m;
  const auto p = m.add_input_port("p", 1);
  const auto hole = m.new_net();
  const auto x = m.and2(p[0], hole);
  const auto y = m.or2(x, p[0]);
  m.drive_net(hole, y);  // cycle: hole -> x -> y -> hole
  const auto err = m.validate();
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("cycle"), std::string::npos);
  // The offender is named: cell index, type, and driven net.
  EXPECT_NE(err->find("through cell 0"), std::string::npos) << *err;
  EXPECT_NE(err->find("AND2"), std::string::npos) << *err;
  EXPECT_NE(err->find("driving net " + std::to_string(x)), std::string::npos)
      << *err;
}

TEST(Validate, CycleThroughDffIsFine) {
  Module m;
  const auto d = m.new_net();
  const auto q = m.dff(d);
  m.drive_net(d, m.inv(q));
  EXPECT_EQ(m.validate(), std::nullopt);
}

TEST(Validate, SequentialSelfLoopViaEnableMux) {
  // The register-with-enable idiom: q -> mux -> d -> q.
  Module m;
  const auto en = m.add_input_port("en", 1)[0];
  const auto data = m.add_input_port("d", 1)[0];
  const auto d_net = m.new_net();
  const auto q = m.dff(d_net);
  m.drive_net(d_net, m.mux2(q, data, en));
  m.add_output_port("q", {q});
  EXPECT_EQ(m.validate(), std::nullopt);
}

}  // namespace
}  // namespace pml::netlist
