// VCD waveform dumping and stuck-at fault injection.

#include <gtest/gtest.h>

#include <sstream>

#include "pml/netlist/module.hpp"
#include "pml/sim/cycle_sim.hpp"
#include "pml/sim/vcd.hpp"

namespace pml::sim {
namespace {

using netlist::CellType;
using netlist::Module;

TEST(Vcd, HeaderAndChanges) {
  Module m("dut");
  const auto d = m.add_input_port("d", 2);
  m.add_output_port("y", {m.and2(d[0], d[1])});
  CycleSimulator sim(m);
  std::ostringstream os;
  VcdWriter vcd(sim, os);

  sim.set_port("d", 0b11);
  sim.propagate();
  vcd.sample(0);
  sim.set_port("d", 0b01);
  sim.propagate();
  vcd.sample(1);
  sim.propagate();
  vcd.sample(2);  // no change: no new timestamp needed

  const std::string out = os.str();
  EXPECT_NE(out.find("$timescale 1 ms $end"), std::string::npos);
  EXPECT_NE(out.find("$scope module dut $end"), std::string::npos);
  EXPECT_NE(out.find("$var wire 2 ! d [1:0] $end"), std::string::npos);
  EXPECT_NE(out.find("$var wire 1 \" y $end"), std::string::npos);
  EXPECT_NE(out.find("#0"), std::string::npos);
  EXPECT_NE(out.find("b11 !"), std::string::npos);
  EXPECT_NE(out.find("#1"), std::string::npos);
  EXPECT_NE(out.find("b01 !"), std::string::npos);
  EXPECT_EQ(out.find("#2"), std::string::npos) << "quiet cycles are omitted";
}

TEST(Vcd, AddSignalAfterHeaderThrows) {
  Module m;
  (void)m.add_input_port("d", 1);
  CycleSimulator sim(m);
  std::ostringstream os;
  VcdWriter vcd(sim, os);
  vcd.sample(0);
  EXPECT_THROW(vcd.add_signal("late", synth::Bus{}), std::logic_error);
}

TEST(Faults, StuckAtOverridesGateOutput) {
  Module m;
  const auto p = m.add_input_port("p", 2);
  const auto y = m.add_gate_raw(CellType::kAnd2, p[0], p[1]);
  m.add_output_port("y", {y});
  CycleSimulator sim(m);
  sim.set_port("p", 0b11);
  sim.propagate();
  EXPECT_EQ(sim.port_unsigned("y"), 1u);
  sim.force_net(y, false);  // stuck-at-0
  sim.propagate();
  EXPECT_EQ(sim.port_unsigned("y"), 0u);
  sim.unforce_net(y);
  sim.propagate();
  EXPECT_EQ(sim.port_unsigned("y"), 1u);
}

TEST(Faults, StuckAtPropagatesDownstream) {
  Module m;
  const auto p = m.add_input_port("p", 2);
  const auto mid = m.add_gate_raw(CellType::kOr2, p[0], p[1]);
  const auto y = m.add_gate_raw(CellType::kInv, mid);
  m.add_output_port("y", {y});
  CycleSimulator sim(m);
  sim.set_port("p", 0b00);
  sim.propagate();
  EXPECT_EQ(sim.port_unsigned("y"), 1u);
  sim.force_net(mid, true);  // stuck-at-1 upstream
  sim.propagate();
  EXPECT_EQ(sim.port_unsigned("y"), 0u) << "fault must reach the output";
}

TEST(Faults, PrimaryInputStuckAt) {
  Module m;
  const auto p = m.add_input_port("p", 1);
  m.add_output_port("y", {m.inv(p[0])});
  CycleSimulator sim(m);
  sim.force_net(p[0], true);
  sim.set_port("p", 0);  // driven low, but stuck high
  sim.propagate();
  EXPECT_EQ(sim.port_unsigned("y"), 0u);
}

TEST(Faults, ClearForcesRestoresAll) {
  Module m;
  const auto p = m.add_input_port("p", 2);
  const auto y = m.add_gate_raw(CellType::kXor2, p[0], p[1]);
  m.add_output_port("y", {y});
  CycleSimulator sim(m);
  sim.force_net(y, true);
  sim.force_net(p[0], false);
  EXPECT_EQ(sim.num_forced(), 2u);
  sim.clear_forces();
  EXPECT_EQ(sim.num_forced(), 0u);
  sim.set_port("p", 0b01);
  sim.propagate();
  EXPECT_EQ(sim.port_unsigned("y"), 1u);
}

TEST(Faults, RejectsConstantNets) {
  Module m;
  (void)m.add_input_port("p", 1);
  CycleSimulator sim(m);
  EXPECT_THROW(sim.force_net(netlist::kConst0, true), std::invalid_argument);
  EXPECT_THROW(sim.force_net(99999, true), std::out_of_range);
}

TEST(Faults, DoubleForceCountsOnce) {
  Module m;
  const auto p = m.add_input_port("p", 1);
  CycleSimulator sim(m);
  sim.force_net(p[0], true);
  sim.force_net(p[0], false);
  EXPECT_EQ(sim.num_forced(), 1u);
  sim.unforce_net(p[0]);
  sim.unforce_net(p[0]);
  EXPECT_EQ(sim.num_forced(), 0u);
}

}  // namespace
}  // namespace pml::sim
