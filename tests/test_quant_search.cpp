// Lowest-precision search: cost ordering, tolerance handling, fallback.

#include <gtest/gtest.h>

#include "pml/ml/metrics.hpp"
#include "pml/ml/multiclass.hpp"
#include "pml/ml/scaler.hpp"
#include "pml/ml/synthetic_datasets.hpp"
#include "pml/quant/search.hpp"

namespace pml::quant {
namespace {

struct Trained {
  ml::MulticlassSvm model;
  ml::Dataset holdout;
};

Trained trained(ml::UciProfile profile) {
  const ml::Dataset d = ml::make_uci_like(profile);
  const ml::Split s = ml::stratified_split(d, 0.8, 91);
  ml::MinMaxScaler scaler;
  scaler.fit(s.train);
  ml::MulticlassTrainOptions opts;
  Trained setup;
  setup.model = ml::train_one_vs_rest(scaler.transform(s.train), opts);
  setup.holdout = scaler.transform(s.test);
  return setup;
}

TEST(Search, FindsConfigurationWithinTolerance) {
  const Trained s = trained(ml::UciProfile::kCardio);
  PrecisionSearchOptions opts;
  const auto result = search_min_precision(s.model, s.holdout, opts);
  EXPECT_GE(result.input_bits, opts.min_input_bits);
  EXPECT_LE(result.input_bits, opts.max_input_bits);
  EXPECT_GE(result.weight_bits, opts.min_weight_bits);
  EXPECT_LE(result.weight_bits, opts.max_weight_bits);
  EXPECT_GE(result.quantized_accuracy,
            result.float_accuracy - opts.tolerance - 1e-9);
  EXPECT_FALSE(result.sweep.empty());
}

TEST(Search, WinnerIsCheapestInSweep) {
  const Trained s = trained(ml::UciProfile::kDermatology);
  PrecisionSearchOptions opts;
  const auto result = search_min_precision(s.model, s.holdout, opts);
  // Every earlier sweep point (cheaper or equal cost) must have failed the
  // tolerance check.
  const int winner_cost = result.input_bits * result.weight_bits;
  for (const auto& cand : result.sweep) {
    const bool is_winner = cand.input_bits == result.input_bits &&
                           cand.weight_bits == result.weight_bits;
    if (is_winner) continue;
    EXPECT_LE(cand.input_bits * cand.weight_bits, winner_cost);
    EXPECT_LT(cand.accuracy, result.float_accuracy - opts.tolerance + 1e-9);
  }
}

TEST(Search, TightToleranceNeedsMoreBits) {
  const Trained s = trained(ml::UciProfile::kRedWine);
  PrecisionSearchOptions loose;
  loose.tolerance = 0.05;
  PrecisionSearchOptions tight;
  tight.tolerance = 0.002;
  const auto r_loose = search_min_precision(s.model, s.holdout, loose);
  const auto r_tight = search_min_precision(s.model, s.holdout, tight);
  EXPECT_LE(r_loose.input_bits * r_loose.weight_bits,
            r_tight.input_bits * r_tight.weight_bits);
}

TEST(Search, FallsBackToMaxPrecision) {
  const Trained s = trained(ml::UciProfile::kWhiteWine);
  PrecisionSearchOptions impossible;
  impossible.tolerance = -1.0;  // can never be met (demands improvement)
  impossible.max_input_bits = 5;
  impossible.max_weight_bits = 5;
  const auto r = search_min_precision(s.model, s.holdout, impossible);
  EXPECT_EQ(r.input_bits, 5);
  EXPECT_EQ(r.weight_bits, 5);
}

TEST(Search, ParallelEvaluationIsBitIdenticalToSerial) {
  // The candidate fan-out across threads must not change the winner, the
  // accuracies, or the sweep's cost-ordered prefix shape.
  const Trained s = trained(ml::UciProfile::kCardio);
  PrecisionSearchOptions serial;
  serial.num_threads = 1;
  const auto base = search_min_precision(s.model, s.holdout, serial);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{5},
                                    std::size_t{16}, std::size_t{0}}) {
    PrecisionSearchOptions par = serial;
    par.num_threads = threads;
    const auto r = search_min_precision(s.model, s.holdout, par);
    EXPECT_EQ(r.input_bits, base.input_bits);
    EXPECT_EQ(r.weight_bits, base.weight_bits);
    EXPECT_EQ(r.float_accuracy, base.float_accuracy);
    EXPECT_EQ(r.quantized_accuracy, base.quantized_accuracy);
    ASSERT_EQ(r.sweep.size(), base.sweep.size());
    for (std::size_t i = 0; i < base.sweep.size(); ++i) {
      EXPECT_EQ(r.sweep[i].input_bits, base.sweep[i].input_bits);
      EXPECT_EQ(r.sweep[i].weight_bits, base.sweep[i].weight_bits);
      EXPECT_EQ(r.sweep[i].accuracy, base.sweep[i].accuracy);
    }
  }
}

TEST(Search, RejectsEmptyHoldout) {
  const Trained s = trained(ml::UciProfile::kCardio);
  ml::Dataset empty;
  EXPECT_THROW((void)search_min_precision(s.model, empty, {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace pml::quant
