// BatchEventSimulator: randomized lane-by-lane bit-identity of the 64-way
// SWAR delay-accurate engine against the scalar EventSimulator oracle —
// per-net transition counts (including glitches), DFF clock events, and
// functional outputs — on every generated architecture (sequential SVM,
// parallel SVM, MLP) and on random netlists; ragged (<64 lane) batches,
// back-to-back inference without reset, count masking, and the sharded
// core::collect_activity driver against the scalar per-chunk reference.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "pml/arch/mlp_circuit.hpp"
#include "pml/arch/parallel_svm.hpp"
#include "pml/arch/sequential_svm.hpp"
#include "pml/cells/library.hpp"
#include "pml/core/activity.hpp"
#include "pml/sim/batch_event_sim.hpp"
#include "pml/sim/cycle_sim.hpp"
#include "pml/sim/event_sim.hpp"

namespace pml::sim {
namespace {

using netlist::CellType;
using netlist::Module;
using netlist::NetId;
using quant::QuantizedClassifier;
using quant::QuantizedMlp;
using quant::QuantizedSvm;

constexpr std::size_t kLanes = BatchEventSimulator::kLanes;

// --- deterministic generators (same style as test_sim_batch.cpp) ------------

std::uint64_t xorshift(std::uint64_t& s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}

QuantizedSvm random_svm(int classes, int features, int input_bits,
                        int weight_bits, std::uint64_t seed) {
  QuantizedSvm q;
  q.strategy = ml::MulticlassStrategy::kOneVsRest;
  q.num_classes = classes;
  q.input_format = quant::input_format(input_bits);
  q.weight_format = fixed::FixedFormat{.total_bits = weight_bits,
                                       .frac_bits = weight_bits - 1,
                                       .is_signed = true};
  std::uint64_t s = seed * 0x9E3779B97F4A7C15ull + 1;
  const std::int64_t wmin = q.weight_format.min_code();
  const std::int64_t wmax = q.weight_format.max_code();
  for (int k = 0; k < classes; ++k) {
    QuantizedClassifier c;
    for (int j = 0; j < features; ++j) {
      c.w.push_back(wmin + static_cast<std::int64_t>(
                               xorshift(s) % static_cast<std::uint64_t>(
                                                 wmax - wmin + 1)));
    }
    c.b = -8 + static_cast<std::int64_t>(xorshift(s) % 17);
    q.classifiers.push_back(std::move(c));
  }
  return q;
}

QuantizedMlp random_mlp(int inputs, int hidden, int outputs, int input_bits,
                        std::uint64_t seed) {
  QuantizedMlp q;
  q.num_inputs = inputs;
  q.num_hidden = hidden;
  q.num_outputs = outputs;
  q.input_format = quant::input_format(input_bits);
  q.w1_format =
      fixed::FixedFormat{.total_bits = 4, .frac_bits = 3, .is_signed = true};
  q.hidden_format =
      fixed::FixedFormat{.total_bits = 4, .frac_bits = 4, .is_signed = false};
  q.w2_format =
      fixed::FixedFormat{.total_bits = 4, .frac_bits = 3, .is_signed = true};
  q.hidden_shift = 3;
  std::uint64_t s = seed ^ 0x5555AAAAull;
  auto rand_w = [&s]() {
    return -8 + static_cast<std::int64_t>(xorshift(s) % 16);
  };
  q.w1.resize(static_cast<std::size_t>(hidden));
  q.b1.resize(static_cast<std::size_t>(hidden));
  for (int i = 0; i < hidden; ++i) {
    for (int j = 0; j < inputs; ++j) {
      q.w1[static_cast<std::size_t>(i)].push_back(rand_w());
    }
    q.b1[static_cast<std::size_t>(i)] = rand_w() * 4;
  }
  q.w2.resize(static_cast<std::size_t>(outputs));
  q.b2.resize(static_cast<std::size_t>(outputs));
  for (int k = 0; k < outputs; ++k) {
    for (int i = 0; i < hidden; ++i) {
      q.w2[static_cast<std::size_t>(k)].push_back(rand_w());
    }
    q.b2[static_cast<std::size_t>(k)] = rand_w() * 2;
  }
  return q;
}

/// Random combinational + sequential netlist over `inputs`-bit port "x"
/// (same construction as test_sim_event.cpp).
Module random_module(std::uint64_t seed, int inputs, int gates, int dffs) {
  Module m("rand");
  std::uint64_t s = seed * 2654435761u + 1;
  auto below = [&s](std::uint32_t n) {
    return static_cast<std::uint32_t>(xorshift(s) % n);
  };
  std::vector<NetId> pool = m.add_input_port("x", inputs);
  static constexpr CellType kComb[] = {
      CellType::kInv,   CellType::kBuf,  CellType::kNand2, CellType::kNor2,
      CellType::kAnd2,  CellType::kOr2,  CellType::kXor2,  CellType::kXnor2,
      CellType::kMux2};
  for (int i = 0; i < gates; ++i) {
    const CellType t = kComb[below(9)];
    const NetId a = pool[below(static_cast<std::uint32_t>(pool.size()))];
    const NetId b = pool[below(static_cast<std::uint32_t>(pool.size()))];
    const NetId sel = pool[below(static_cast<std::uint32_t>(pool.size()))];
    const int arity = netlist::cell_num_inputs(t);
    pool.push_back(arity == 1   ? m.add_gate_raw(t, a)
                   : arity == 2 ? m.add_gate_raw(t, a, b)
                                : m.add_gate_raw(t, a, b, sel));
  }
  for (int i = 0; i < dffs; ++i) {
    const NetId d = pool[below(static_cast<std::uint32_t>(pool.size()))];
    pool.push_back(m.dff(d, (xorshift(s) & 1) != 0));
  }
  std::vector<NetId> outs(pool.end() - std::min<std::size_t>(8, pool.size()),
                          pool.end());
  m.add_output_port("y", outs);
  return m;
}

std::vector<std::vector<std::int64_t>> random_samples(std::size_t count,
                                                      int features,
                                                      std::int64_t max_code,
                                                      std::uint64_t seed) {
  std::uint64_t s = seed | 1;
  std::vector<std::vector<std::int64_t>> samples(count);
  for (auto& row : samples) {
    for (int j = 0; j < features; ++j) {
      row.push_back(static_cast<std::int64_t>(
          xorshift(s) % static_cast<std::uint64_t>(max_code + 1)));
    }
  }
  return samples;
}

/// Drive `lanes` back-to-back sample streams (no reset between rounds)
/// through one BatchEventSimulator and, lane by lane, through fresh scalar
/// EventSimulators, and require (a) every output port to agree on every
/// round and (b) the batch ActivityStats to equal the *sum* of the scalar
/// per-lane ActivityStats — toggles net for net, DFF clock events, and
/// cycles.  `cycles` == 0 settles once per round (combinational).
void expect_batch_event_equivalent(
    const Module& m, const cells::CellLibrary& lib, double quantum, int cycles,
    const std::vector<const netlist::Port*>& ports,
    const std::vector<std::vector<std::vector<std::int64_t>>>& streams) {
  const auto lv = levelize_shared(m);
  const std::size_t lanes = streams.size();
  ASSERT_GE(lanes, 1u);
  ASSERT_LE(lanes, kLanes);
  const std::size_t rounds = streams[0].size();

  BatchEventSimulator batch(m, lib, quantum, lv);
  batch.set_count_mask(lanes == kLanes ? ~std::uint64_t{0}
                                       : (std::uint64_t{1} << lanes) - 1);
  // batch_outputs[round][lane][output port] observed after each round.
  std::vector<std::vector<std::vector<std::uint64_t>>> batch_outputs(rounds);
  std::uint64_t lane_values[kLanes];
  for (std::size_t r = 0; r < rounds; ++r) {
    for (std::size_t j = 0; j < ports.size(); ++j) {
      for (std::size_t lane = 0; lane < lanes; ++lane) {
        lane_values[lane] = static_cast<std::uint64_t>(streams[lane][r][j]);
      }
      batch.set_port(*ports[j], lane_values, lanes);
    }
    if (cycles == 0) {
      batch.settle();
    } else {
      for (int c = 0; c < cycles; ++c) batch.step();
    }
    batch_outputs[r].resize(lanes);
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      for (const netlist::Port& out : m.output_ports()) {
        batch_outputs[r][lane].push_back(batch.port_unsigned(out, lane));
      }
    }
  }

  ActivityStats scalar_sum;
  scalar_sum.net_toggles.assign(m.num_nets(), 0);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    EventSimulator es(m, lib, quantum, lv);
    for (std::size_t r = 0; r < rounds; ++r) {
      for (std::size_t j = 0; j < ports.size(); ++j) {
        es.set_port(*ports[j],
                    static_cast<std::uint64_t>(streams[lane][r][j]));
      }
      if (cycles == 0) {
        es.settle();
      } else {
        for (int c = 0; c < cycles; ++c) es.step();
      }
      std::size_t p = 0;
      for (const netlist::Port& out : m.output_ports()) {
        EXPECT_EQ(batch_outputs[r][lane][p], es.port_unsigned(out.name))
            << "port '" << out.name << "' diverges on lane " << lane
            << " round " << r;
        ++p;
      }
    }
    scalar_sum.accumulate(es.activity());
  }

  EXPECT_EQ(batch.activity().net_toggles, scalar_sum.net_toggles);
  EXPECT_EQ(batch.activity().dff_clock_events, scalar_sum.dff_clock_events);
  EXPECT_EQ(batch.activity().cycles, scalar_sum.cycles);
  // The functional/glitch split must be lane-sum consistent too, and the
  // functional slice can never exceed the total per net.
  EXPECT_EQ(batch.activity().net_functional, scalar_sum.net_functional);
  ASSERT_EQ(batch.activity().net_functional.size(),
            batch.activity().net_toggles.size());
  for (std::size_t n = 0; n < batch.activity().net_toggles.size(); ++n) {
    EXPECT_LE(batch.activity().net_functional[n],
              batch.activity().net_toggles[n])
        << "net " << n << ": functional transitions exceed the total";
  }
}

std::vector<const netlist::Port*> feature_port_list(const Module& m,
                                                    std::size_t count) {
  std::vector<const netlist::Port*> ports;
  for (std::size_t j = 0; j < count; ++j) {
    const netlist::Port* p = m.find_input("x" + std::to_string(j));
    EXPECT_NE(p, nullptr);
    ports.push_back(p);
  }
  return ports;
}

/// Split flat samples into `lanes` streams of `rounds` samples each.
std::vector<std::vector<std::vector<std::int64_t>>> as_streams(
    const std::vector<std::vector<std::int64_t>>& samples, std::size_t lanes,
    std::size_t rounds) {
  std::vector<std::vector<std::vector<std::int64_t>>> streams(lanes);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    for (std::size_t r = 0; r < rounds; ++r) {
      streams[lane].push_back(samples[lane * rounds + r]);
    }
  }
  return streams;
}

// --- lane-by-lane equivalence across architectures ---------------------------

TEST(BatchEventSim, SequentialSvmMatchesScalarSum) {
  const auto lib = cells::CellLibrary::egfet();
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const QuantizedSvm q =
        random_svm(3 + static_cast<int>(seed % 3), 4, 3, 4, seed);
    const auto circuit = arch::build_sequential_svm(q);
    const auto xs =
        random_samples(kLanes * 3, 4, q.input_format.max_code(), seed * 77);
    expect_batch_event_equivalent(
        circuit.module, lib, 0.02, circuit.cycles_per_inference,
        feature_port_list(circuit.module, 4), as_streams(xs, kLanes, 3));
  }
}

TEST(BatchEventSim, SequentialSvmRaggedLanesMatchScalarSum) {
  const auto lib = cells::CellLibrary::egfet();
  const QuantizedSvm q = random_svm(4, 4, 3, 4, 17);
  const auto circuit = arch::build_sequential_svm(q);
  // 37 < 64 lanes: the count mask must keep the sum exact.
  const auto xs = random_samples(37 * 3, 4, q.input_format.max_code(), 311);
  expect_batch_event_equivalent(
      circuit.module, lib, 0.02, circuit.cycles_per_inference,
      feature_port_list(circuit.module, 4), as_streams(xs, 37, 3));
}

TEST(BatchEventSim, ParallelSvmMatchesScalarSum) {
  const auto lib = cells::CellLibrary::egfet();
  const QuantizedSvm q = random_svm(4, 3, 3, 4, 11);
  const auto circuit = arch::build_parallel_svm(q);
  const auto xs = random_samples(kLanes * 3, 3, q.input_format.max_code(), 99);
  expect_batch_event_equivalent(circuit.module, lib, 0.02, /*cycles=*/0,
                                feature_port_list(circuit.module, 3),
                                as_streams(xs, kLanes, 3));
}

TEST(BatchEventSim, MlpMatchesScalarSum) {
  const auto lib = cells::CellLibrary::egfet();
  const QuantizedMlp q = random_mlp(3, 4, 3, 3, 21);
  const auto circuit = arch::build_mlp_circuit(q);
  // 29 < 64 lanes, combinational.
  const auto xs = random_samples(29 * 3, 3, q.input_format.max_code(), 123);
  expect_batch_event_equivalent(circuit.module, lib, 0.02, /*cycles=*/0,
                                feature_port_list(circuit.module, 3),
                                as_streams(xs, 29, 3));
}

// --- random netlists (property test) ----------------------------------------

class BatchEventMatchesScalar : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(BatchEventMatchesScalar, ActivityAndOutputs) {
  const std::uint64_t seed = GetParam();
  const Module m = random_module(seed, 6, 60, 5);
  ASSERT_EQ(m.validate(), std::nullopt);
  const auto lib = cells::CellLibrary::egfet();
  const netlist::Port* x = m.find_input("x");
  ASSERT_NE(x, nullptr);
  // 16 lanes x 5 rounds of random 6-bit stimuli, clocked once per round.
  std::uint64_t s = seed ^ 0xABCDEF;
  std::vector<std::vector<std::vector<std::int64_t>>> streams(16);
  for (auto& stream : streams) {
    for (int r = 0; r < 5; ++r) {
      stream.push_back({static_cast<std::int64_t>(xorshift(s) & 0x3F)});
    }
  }
  expect_batch_event_equivalent(m, lib, 0.01, /*cycles=*/1, {x}, streams);
}

INSTANTIATE_TEST_SUITE_P(RandomNetlists, BatchEventMatchesScalar,
                         ::testing::Range<std::uint64_t>(1, 13));

// --- glitch counting ---------------------------------------------------------

TEST(BatchEventSim, CountsGlitchesLaneForLane) {
  // y = XOR(a, INV^10(a)): functionally constant 0, but every input edge
  // raises a glitch pulse on y in *every* lane that saw the edge.
  Module m;
  const auto a = m.add_input_port("a", 1)[0];
  auto n = a;
  for (int i = 0; i < 10; ++i) n = m.add_gate_raw(CellType::kInv, n);
  const auto y = m.add_gate_raw(CellType::kXor2, a, n);
  m.add_output_port("y", {y});
  const auto lib = cells::CellLibrary::egfet();

  EventSimulator scalar(m, lib, 0.01);
  BatchEventSimulator batch(m, lib, 0.01);
  for (int i = 0; i < 10; ++i) {
    const bool v = (i % 2) == 0;
    scalar.set_net(a, v);
    batch.set_net(a, v ? ~std::uint64_t{0} : 0);  // same edge in all lanes
    scalar.settle();
    batch.settle();
    EXPECT_EQ(scalar.port_unsigned("y"), 0u);
    for (const std::size_t lane : {std::size_t{0}, std::size_t{63}}) {
      EXPECT_EQ(batch.port_unsigned("y", lane), 0u);
    }
  }
  EXPECT_GE(scalar.activity().net_toggles[y], 20u);
  EXPECT_EQ(batch.activity().net_toggles[y],
            64u * scalar.activity().net_toggles[y])
      << "all 64 lanes must see exactly the scalar glitch train";
  // y is functionally constant 0: every one of its transitions is a
  // glitch.  The input a, by contrast, transitions exactly once per
  // settle and every one survives the window — purely functional.
  EXPECT_EQ(scalar.activity().net_functional[y], 0u);
  EXPECT_EQ(batch.activity().net_functional[y], 0u);
  EXPECT_EQ(scalar.activity().net_functional[a], 10u);
  EXPECT_EQ(scalar.activity().net_toggles[a], 10u);
  EXPECT_EQ(batch.activity().net_functional[a], 64u * 10u);
}

TEST(BatchEventSim, FunctionalSplitCountsSurvivingTransitionsExactly) {
  // y = AND(a, INV^6(a)): functionally y == a, and despite the heavily
  // skewed second pin the AND's controlling input masks the skew — on a
  // rise y waits for the slow pin, on a fall it follows the fast pin, so
  // the pulse train is glitch-free.  Every transition must therefore be
  // classified functional (the complement of the XOR case above, where
  // every transition is a glitch).
  Module m;
  const auto a = m.add_input_port("a", 1)[0];
  auto n = a;
  for (int i = 0; i < 6; ++i) n = m.add_gate_raw(CellType::kInv, n);
  const auto y = m.add_gate_raw(CellType::kAnd2, a, n);
  m.add_output_port("y", {y});
  const auto lib = cells::CellLibrary::egfet();

  EventSimulator scalar(m, lib, 0.01);
  for (int i = 0; i < 8; ++i) {
    scalar.set_net(a, (i % 2) == 0);
    scalar.settle();
    EXPECT_EQ(scalar.port_unsigned("y"), (i % 2) == 0 ? 1u : 0u);
  }
  // y settles to a new value on all 8 edges, one physical transition each.
  EXPECT_EQ(scalar.activity().net_functional[y], 8u);
  EXPECT_EQ(scalar.activity().net_toggles[y], 8u);
}

// --- count masking -----------------------------------------------------------

TEST(BatchEventSim, CountMaskExcludesNoisyLanes) {
  const auto lib = cells::CellLibrary::egfet();
  const QuantizedSvm q = random_svm(3, 3, 3, 4, 43);
  const auto circuit = arch::build_sequential_svm(q);
  const auto ports = feature_port_list(circuit.module, 3);
  BatchEventSimulator quiet(circuit.module, lib, 0.02);
  BatchEventSimulator noisy(circuit.module, lib, 0.02);
  quiet.set_count_mask(1);
  noisy.set_count_mask(1);
  const auto xs = random_samples(kLanes, 3, q.input_format.max_code(), 5);
  std::uint64_t lane_values[kLanes];
  for (std::size_t j = 0; j < 3; ++j) {
    for (std::size_t lane = 0; lane < kLanes; ++lane) {
      lane_values[lane] = static_cast<std::uint64_t>(xs[lane][j]);
    }
    // `quiet` sees only lane 0's sample; `noisy` additionally carries 63
    // churning uncounted lanes.
    quiet.set_port(*ports[j], lane_values, 1);
    noisy.set_port(*ports[j], lane_values, kLanes);
  }
  for (int c = 0; c < circuit.cycles_per_inference; ++c) {
    quiet.step();
    noisy.step();
  }
  EXPECT_EQ(quiet.activity().net_toggles, noisy.activity().net_toggles);
  EXPECT_EQ(quiet.activity().dff_clock_events,
            noisy.activity().dff_clock_events);
}

// --- API edges ---------------------------------------------------------------

TEST(BatchEventSim, DffInitAndReset) {
  Module m;
  const auto d = m.add_input_port("d", 1)[0];
  m.add_output_port("q", {m.dff(d, /*init=*/true)});
  const auto lib = cells::CellLibrary::egfet();
  BatchEventSimulator sim(m, lib);
  const NetId qn = m.find_output("q")->nets[0];
  EXPECT_EQ(sim.net_lanes(qn), ~std::uint64_t{0});
  sim.set_net(d, 0);
  sim.step();
  EXPECT_EQ(sim.net_lanes(qn), 0u);
  EXPECT_GT(sim.activity().cycles, 0u);
  sim.reset();
  EXPECT_EQ(sim.net_lanes(qn), ~std::uint64_t{0});
  EXPECT_EQ(sim.activity().cycles, 0u);
  EXPECT_EQ(sim.activity().dff_clock_events, 0u);
}

TEST(BatchEventSim, BroadcastAndSignedReads) {
  Module m;
  const auto p = m.add_input_port("p", 4);
  m.add_output_port("y", {p[0], p[1], p[2], p[3]});
  const auto lib = cells::CellLibrary::egfet();
  BatchEventSimulator sim(m, lib);
  sim.set_port_broadcast("p", 0b1000);
  sim.settle();
  for (const std::size_t lane : {std::size_t{0}, std::size_t{63}}) {
    EXPECT_EQ(sim.port_unsigned("y", lane), 0b1000u);
    EXPECT_EQ(sim.port_signed("y", lane), -8);
  }
}

TEST(BatchEventSim, BoundsChecks) {
  Module m;
  (void)m.add_input_port("p", 1);
  const auto lib = cells::CellLibrary::egfet();
  BatchEventSimulator sim(m, lib);
  EXPECT_THROW(sim.set_port("nope", nullptr, 0), std::invalid_argument);
  EXPECT_THROW((void)sim.port_unsigned("nope", 0), std::invalid_argument);
  EXPECT_THROW((void)sim.port_unsigned("p", kLanes), std::out_of_range);
  EXPECT_THROW(sim.set_net(99999, 0), std::out_of_range);
  EXPECT_THROW(BatchEventSimulator(m, lib, 0.0), std::invalid_argument);
  EXPECT_THROW(BatchEventSimulator(m, lib, 0.01, nullptr),
               std::invalid_argument);
}

}  // namespace
}  // namespace pml::sim

// --- core::collect_activity --------------------------------------------------

namespace pml::core {
namespace {

using quant::QuantizedSvm;

/// The scalar reference protocol collect_activity must reproduce exactly:
/// independent contiguous chunks, each warmed up on its first sample
/// (counters discarded) and then replayed in order on a fresh scalar
/// EventSimulator.
sim::ActivityStats scalar_reference(const netlist::Module& m,
                                    const cells::CellLibrary& lib,
                                    int cycles_per_inference,
                                    const CircuitWorkload& wl, std::size_t n,
                                    std::size_t chunk, double quantum) {
  const auto lv = sim::levelize_shared(m);
  const bool sequential = !lv->dffs.empty();
  const auto ports = feature_ports(m, wl.feature_codes[0].size());
  sim::ActivityStats sum;
  sum.net_toggles.assign(m.num_nets(), 0);
  for (std::size_t begin = 0; begin < n; begin += chunk) {
    const std::size_t len = std::min(chunk, n - begin);
    sim::EventSimulator es(m, lib, quantum, lv);
    const auto apply = [&](std::size_t s) {
      for (std::size_t j = 0; j < ports.size(); ++j) {
        es.set_port(*ports[j],
                    static_cast<std::uint64_t>(wl.feature_codes[s][j]));
      }
      if (sequential) {
        for (int c = 0; c < cycles_per_inference; ++c) es.step();
      } else {
        es.settle();
      }
    };
    apply(begin);
    es.clear_activity();
    for (std::size_t s = begin; s < begin + len; ++s) apply(s);
    sum.accumulate(es.activity());
  }
  return sum;
}

QuantizedSvm small_model() {
  QuantizedSvm q;
  q.strategy = ml::MulticlassStrategy::kOneVsRest;
  q.num_classes = 3;
  q.input_format = quant::input_format(3);
  q.weight_format =
      fixed::FixedFormat{.total_bits = 4, .frac_bits = 3, .is_signed = true};
  q.classifiers = {quant::QuantizedClassifier{{3, -2}, 1},
                   quant::QuantizedClassifier{{-1, 4}, 0},
                   quant::QuantizedClassifier{{2, 2}, -3}};
  return q;
}

CircuitWorkload exhaustive_workload(const QuantizedSvm& q, int repeats) {
  CircuitWorkload wl;
  for (int r = 0; r < repeats; ++r) {
    for (std::int64_t a = 0; a <= 7; ++a) {
      for (std::int64_t b = 0; b <= 7; ++b) {
        wl.feature_codes.push_back({a, b});
        wl.expected_class.push_back(q.predict_codes({a, b}));
      }
    }
  }
  return wl;
}

void expect_stats_equal(const sim::ActivityStats& a,
                        const sim::ActivityStats& b) {
  EXPECT_EQ(a.net_toggles, b.net_toggles);
  EXPECT_EQ(a.net_functional, b.net_functional);
  EXPECT_EQ(a.dff_clock_events, b.dff_clock_events);
  EXPECT_EQ(a.cycles, b.cycles);
}

TEST(CollectActivity, MatchesScalarReferenceSequentialRaggedChunk) {
  const auto lib = cells::CellLibrary::egfet();
  const auto q = small_model();
  const auto circuit = arch::build_sequential_svm(q);
  const auto wl = exhaustive_workload(q, 2);  // 128 samples
  ActivityOptions opts;
  opts.num_threads = 1;
  opts.chunk_samples = 12;  // 10 full chunks + ragged 8-sample final chunk
  // n = 115 also clips the workload (n < workload size).
  const auto batch = collect_activity(circuit.module, lib,
                                      circuit.cycles_per_inference, wl, 115,
                                      opts);
  const auto ref =
      scalar_reference(circuit.module, lib, circuit.cycles_per_inference, wl,
                       115, 12, opts.time_quantum_ms);
  expect_stats_equal(batch, ref);
}

TEST(CollectActivity, MatchesScalarReferenceCombinational) {
  const auto lib = cells::CellLibrary::egfet();
  const auto q = small_model();
  const auto circuit = arch::build_parallel_svm(q);
  const auto wl = exhaustive_workload(q, 2);
  ActivityOptions opts;
  opts.num_threads = 1;
  opts.chunk_samples = 16;
  const auto batch = collect_activity(circuit.module, lib, 1, wl, 120, opts);
  const auto ref = scalar_reference(circuit.module, lib, 1, wl, 120, 16,
                                    opts.time_quantum_ms);
  expect_stats_equal(batch, ref);
}

TEST(CollectActivity, MatchesScalarReferenceMlp) {
  const auto lib = cells::CellLibrary::egfet();
  const auto q = sim::random_mlp(3, 4, 3, 3, 77);
  const auto circuit = arch::build_mlp_circuit(q);
  CircuitWorkload wl;
  wl.feature_codes =
      sim::random_samples(100, 3, q.input_format.max_code(), 901);
  ActivityOptions opts;
  opts.num_threads = 1;
  opts.chunk_samples = 8;  // 12 full chunks + ragged 4-sample final chunk
  const auto batch = collect_activity(circuit.module, lib, 1, wl, 100, opts);
  const auto ref = scalar_reference(circuit.module, lib, 1, wl, 100, 8,
                                    opts.time_quantum_ms);
  expect_stats_equal(batch, ref);
}

TEST(CollectActivity, ThreadCountDoesNotChangeTheCounts) {
  const auto lib = cells::CellLibrary::egfet();
  const auto q = small_model();
  const auto circuit = arch::build_sequential_svm(q);
  const auto wl = exhaustive_workload(q, 3);  // 192 samples
  ActivityOptions single;
  single.num_threads = 1;
  single.chunk_samples = 1;  // 192 chunks => 3 batches
  ActivityOptions multi = single;
  multi.num_threads = 4;
  const auto a = collect_activity(circuit.module, lib,
                                  circuit.cycles_per_inference, wl, 192,
                                  single);
  const auto b = collect_activity(circuit.module, lib,
                                  circuit.cycles_per_inference, wl, 192,
                                  multi);
  expect_stats_equal(a, b);
}

TEST(CollectActivity, RejectsBadWorkloads) {
  const auto lib = cells::CellLibrary::egfet();
  const auto q = small_model();
  const auto circuit = arch::build_sequential_svm(q);
  CircuitWorkload empty;
  EXPECT_THROW((void)collect_activity(circuit.module, lib, 3, empty, 10),
               std::invalid_argument);
  CircuitWorkload ragged;
  ragged.feature_codes = {{1, 2}, {5}};
  ragged.expected_class = {0, 1};
  EXPECT_THROW((void)collect_activity(circuit.module, lib, 3, ragged, 2),
               std::invalid_argument);
  const auto wl = exhaustive_workload(q, 1);
  EXPECT_THROW((void)collect_activity(circuit.module, lib, 3, wl, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace pml::core
