// Parallel bespoke SVM circuits (the MICRO'20 / TCAD'23 baselines):
// exhaustive bit-exactness for OvO and OvR, vote semantics, approximation
// effects on area.

#include <gtest/gtest.h>

#include <string>

#include "pml/arch/parallel_svm.hpp"
#include "pml/sim/cycle_sim.hpp"

namespace pml::arch {
namespace {

using quant::QuantizedClassifier;
using quant::QuantizedSvm;

QuantizedSvm tiny_ovo(int classes, int features, int input_bits,
                      int weight_bits, std::uint64_t seed) {
  QuantizedSvm q;
  q.strategy = ml::MulticlassStrategy::kOneVsOne;
  q.num_classes = classes;
  q.input_format = quant::input_format(input_bits);
  q.weight_format = fixed::FixedFormat{.total_bits = weight_bits,
                                       .frac_bits = weight_bits - 1,
                                       .is_signed = true};
  std::uint64_t s = seed ^ 0xABCDEF123ull;
  auto next = [&s]() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  };
  const std::int64_t wmin = q.weight_format.min_code();
  const std::int64_t wmax = q.weight_format.max_code();
  for (int i = 0; i < classes; ++i) {
    for (int j = i + 1; j < classes; ++j) {
      q.pairs.emplace_back(i, j);
      QuantizedClassifier c;
      for (int f = 0; f < features; ++f) {
        c.w.push_back(wmin + static_cast<std::int64_t>(
                                 next() % static_cast<std::uint64_t>(
                                              wmax - wmin + 1)));
      }
      c.b = -4 + static_cast<std::int64_t>(next() % 9);
      q.classifiers.push_back(std::move(c));
    }
  }
  return q;
}

int classify(sim::CycleSimulator& sim, const std::vector<std::int64_t>& xq) {
  for (std::size_t j = 0; j < xq.size(); ++j) {
    sim.set_port("x" + std::to_string(j), static_cast<std::uint64_t>(xq[j]));
  }
  sim.propagate();
  return static_cast<int>(sim.port_unsigned("class"));
}

class OvoShape : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(OvoShape, BitExactExhaustive) {
  const auto [classes, features, input_bits] = GetParam();
  const QuantizedSvm q =
      tiny_ovo(classes, features, input_bits, 4,
               static_cast<std::uint64_t>(classes * 7 + features));
  ParallelSvmCircuit circuit = build_parallel_svm(q);
  ASSERT_EQ(circuit.module.validate(), std::nullopt);
  EXPECT_EQ(circuit.cycles_per_inference, 1);
  EXPECT_EQ(circuit.module.stats().num_dffs, 0u) << "pure combinational";
  sim::CycleSimulator sim(circuit.module);

  const std::int64_t xmax = q.input_format.max_code();
  std::vector<std::int64_t> xq(static_cast<std::size_t>(features), 0);
  std::size_t total = 1;
  for (int j = 0; j < features; ++j) {
    total *= static_cast<std::size_t>(xmax + 1);
  }
  for (std::size_t idx = 0; idx < total; ++idx) {
    std::size_t rest = idx;
    for (int j = 0; j < features; ++j) {
      xq[static_cast<std::size_t>(j)] =
          static_cast<std::int64_t>(rest % static_cast<std::size_t>(xmax + 1));
      rest /= static_cast<std::size_t>(xmax + 1);
    }
    EXPECT_EQ(classify(sim, xq), q.predict_codes(xq)) << "input " << idx;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, OvoShape,
    ::testing::Values(std::make_tuple(2, 2, 3), std::make_tuple(3, 2, 2),
                      std::make_tuple(3, 3, 2), std::make_tuple(4, 2, 2),
                      std::make_tuple(5, 2, 2), std::make_tuple(6, 1, 3)));

TEST(ParallelOvr, BitExactExhaustive) {
  QuantizedSvm q = tiny_ovo(4, 2, 2, 4, 99);
  // Rebrand as OvR (4 classifiers = 4 classes... build a proper OvR).
  q.strategy = ml::MulticlassStrategy::kOneVsRest;
  q.num_classes = static_cast<int>(q.classifiers.size());
  q.pairs.clear();
  ParallelSvmCircuit circuit = build_parallel_svm(q);
  ASSERT_EQ(circuit.module.validate(), std::nullopt);
  sim::CycleSimulator sim(circuit.module);
  for (std::int64_t a = 0; a <= 3; ++a) {
    for (std::int64_t b = 0; b <= 3; ++b) {
      EXPECT_EQ(classify(sim, {a, b}), q.predict_codes({a, b}));
    }
  }
}

TEST(ParallelSvm, ZeroDecisionVotesSecondClass) {
  // One pair (0,1), all-zero weights and bias: decision == 0 -> class 1.
  QuantizedSvm q;
  q.strategy = ml::MulticlassStrategy::kOneVsOne;
  q.num_classes = 2;
  q.input_format = quant::input_format(2);
  q.weight_format =
      fixed::FixedFormat{.total_bits = 4, .frac_bits = 3, .is_signed = true};
  q.pairs = {{0, 1}};
  q.classifiers = {QuantizedClassifier{{0, 0}, 0}};
  ParallelSvmCircuit circuit = build_parallel_svm(q);
  sim::CycleSimulator sim(circuit.module);
  EXPECT_EQ(classify(sim, {3, 3}), 1);
  EXPECT_EQ(q.predict_codes({3, 3}), 1);
}

TEST(ParallelSvm, ApproximationShrinksCircuit) {
  const QuantizedSvm exact = tiny_ovo(5, 6, 6, 8, 17);
  const QuantizedSvm approx = quant::approximate_svm_csd(exact, 1);
  const auto c_exact = build_parallel_svm(exact);
  const auto c_approx = build_parallel_svm(approx);
  EXPECT_LT(c_approx.module.cells().size(), c_exact.module.cells().size());
  // And the approximate circuit still matches ITS model exactly.
  sim::CycleSimulator sim(c_approx.module);
  std::uint64_t s = 5;
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::int64_t> xq;
    for (int j = 0; j < 6; ++j) {
      s = s * 6364136223846793005ull + 1442695040888963407ull;
      xq.push_back(static_cast<std::int64_t>((s >> 33) % 64));
    }
    EXPECT_EQ(classify(sim, xq), approx.predict_codes(xq));
  }
}

TEST(ParallelSvm, ZeroWeightsCostNothing) {
  QuantizedSvm q;
  q.strategy = ml::MulticlassStrategy::kOneVsOne;
  q.num_classes = 2;
  q.input_format = quant::input_format(3);
  q.weight_format =
      fixed::FixedFormat{.total_bits = 4, .frac_bits = 3, .is_signed = true};
  q.pairs = {{0, 1}};
  q.classifiers = {QuantizedClassifier{{0, 0, 0, 5}, 2}};
  const auto sparse = build_parallel_svm(q);
  q.classifiers = {QuantizedClassifier{{3, -3, 5, 5}, 2}};
  const auto dense = build_parallel_svm(q);
  EXPECT_LT(sparse.module.cells().size(), dense.module.cells().size());
}

TEST(ParallelSvm, ChainAndTreeAccumulatorsAgree) {
  const QuantizedSvm q = tiny_ovo(3, 4, 3, 5, 31);
  ParallelSvmOptions chain_opts;
  chain_opts.accumulator = Accumulator::kChain;
  ParallelSvmOptions tree_opts;
  tree_opts.accumulator = Accumulator::kTree;
  auto c_chain = build_parallel_svm(q, chain_opts);
  auto c_tree = build_parallel_svm(q, tree_opts);
  sim::CycleSimulator s_chain(c_chain.module);
  sim::CycleSimulator s_tree(c_tree.module);
  std::uint64_t s = 3;
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<std::int64_t> xq;
    for (int j = 0; j < 4; ++j) {
      s = s * 6364136223846793005ull + 1442695040888963407ull;
      xq.push_back(static_cast<std::int64_t>((s >> 33) % 8));
    }
    EXPECT_EQ(classify(s_chain, xq), classify(s_tree, xq));
    EXPECT_EQ(classify(s_chain, xq), q.predict_codes(xq));
  }
}

TEST(ParallelSvm, OvoHasMoreHardwareThanOvrForManyClasses) {
  // Same class count and feature count: OvO instantiates n(n-1)/2 blocks
  // vs n for OvR — the paper's core storage argument.
  const int classes = 6, features = 4;
  QuantizedSvm ovo = tiny_ovo(classes, features, 3, 5, 23);
  QuantizedSvm ovr = ovo;
  ovr.strategy = ml::MulticlassStrategy::kOneVsRest;
  ovr.pairs.clear();
  ovr.classifiers.resize(static_cast<std::size_t>(classes));
  ovr.num_classes = classes;
  const auto c_ovo = build_parallel_svm(ovo);
  const auto c_ovr = build_parallel_svm(ovr);
  EXPECT_GT(c_ovo.module.cells().size(), c_ovr.module.cells().size() * 3 / 2);
}

}  // namespace
}  // namespace pml::arch
