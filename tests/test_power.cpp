// Power/area model: static sums, activity-based dynamic power, energy
// arithmetic, per-group attribution.

#include <gtest/gtest.h>

#include "pml/cells/library.hpp"
#include "pml/netlist/module.hpp"
#include "pml/power/power.hpp"
#include "pml/sim/event_sim.hpp"

namespace pml::power {
namespace {

using netlist::CellType;
using netlist::Module;

TEST(Area, SumsCellFootprintsWithRouting) {
  Module m;
  const auto p = m.add_input_port("p", 2);
  (void)m.add_gate_raw(CellType::kAnd2, p[0], p[1]);
  (void)m.add_gate_raw(CellType::kXor2, p[0], p[1]);
  const auto lib = cells::CellLibrary::egfet();
  const double expected_mm2 = lib.params(CellType::kAnd2).area_mm2 +
                              lib.params(CellType::kXor2).area_mm2;
  EXPECT_NEAR(area_cm2(m, lib),
              expected_mm2 * lib.calibration().routing_area_factor / 100.0,
              1e-12);
}

TEST(StaticPower, IncludesClockTree) {
  Module m;
  const auto d = m.add_input_port("d", 1)[0];
  (void)m.dff(d);
  const auto lib = cells::CellLibrary::egfet();
  const double expected_uw = lib.params(CellType::kDff).static_power_uw +
                             lib.calibration().clock_tree_power_uw_per_dff;
  EXPECT_NEAR(static_power_mw(m, lib), expected_uw / 1000.0, 1e-12);
}

TEST(Estimate, DynamicPowerFromKnownToggles) {
  Module m;
  const auto p = m.add_input_port("p", 1);
  const auto y = m.add_gate_raw(CellType::kInv, p[0]);
  m.add_output_port("y", {y});
  const auto lib = cells::CellLibrary::egfet();

  sim::ActivityStats activity;
  activity.net_toggles.assign(m.num_nets(), 0);
  activity.net_toggles[y] = 10;  // 10 transitions over the workload

  // Workload: 10 inferences x 1 cycle x 100 ms.
  const auto rep = estimate(m, lib, activity, 10, 1, 100.0);
  const double inv_nj = lib.params(CellType::kInv).switch_energy_nj;
  // 10 toggles x E over 1000 ms -> uW.
  const double expected_dyn_mw = 10.0 * inv_nj / 1000.0 / 1000.0;
  EXPECT_NEAR(rep.dynamic_mw, expected_dyn_mw, 1e-12);
  EXPECT_NEAR(rep.total_mw, rep.static_mw + rep.dynamic_mw, 1e-12);
  EXPECT_NEAR(rep.latency_ms, 100.0, 1e-12);
  EXPECT_NEAR(rep.frequency_hz, 10.0, 1e-12);
  EXPECT_NEAR(rep.energy_per_inference_mj, rep.total_mw * 100.0 / 1000.0,
              1e-12);
}

TEST(Estimate, FanoutLoadingScalesSwitchEnergy) {
  auto build = [](int sinks, netlist::NetId* driven) {
    Module m;
    const auto p = m.add_input_port("p", 1);
    const auto y = m.add_gate_raw(CellType::kInv, p[0]);
    std::vector<netlist::NetId> outs;
    for (int i = 0; i < sinks; ++i) {
      outs.push_back(m.add_gate_raw(CellType::kBuf, y));
    }
    m.add_output_port("y", outs);
    *driven = y;
    return m;
  };
  const auto lib = cells::CellLibrary::egfet();
  netlist::NetId y1 = 0, y4 = 0;
  const Module m1 = build(1, &y1);
  const Module m4 = build(4, &y4);
  sim::ActivityStats a1, a4;
  a1.net_toggles.assign(m1.num_nets(), 0);
  a4.net_toggles.assign(m4.num_nets(), 0);
  a1.net_toggles[y1] = 100;
  a4.net_toggles[y4] = 100;
  const auto r1 = estimate(m1, lib, a1, 10, 1, 10.0);
  const auto r4 = estimate(m4, lib, a4, 10, 1, 10.0);
  EXPECT_GT(r4.dynamic_mw, r1.dynamic_mw);
}

TEST(Estimate, GroupBreakdownCoversAllCells) {
  Module m;
  const auto p = m.add_input_port("p", 2);
  m.begin_group("compute");
  (void)m.add_gate_raw(CellType::kAnd2, p[0], p[1]);
  m.begin_group("voter");
  (void)m.add_gate_raw(CellType::kOr2, p[0], p[1]);
  m.end_group();
  const auto lib = cells::CellLibrary::egfet();
  sim::ActivityStats activity;
  activity.net_toggles.assign(m.num_nets(), 0);
  const auto rep = estimate(m, lib, activity, 1, 1, 10.0);
  ASSERT_EQ(rep.groups.size(), 3u);  // default, compute, voter
  std::size_t cells = 0;
  double static_sum = 0.0;
  for (const auto& g : rep.groups) {
    cells += g.cells;
    static_sum += g.static_mw;
  }
  EXPECT_EQ(cells, m.cells().size());
  EXPECT_NEAR(static_sum, rep.static_mw, 1e-12);
}

TEST(Estimate, RejectsBadWorkload) {
  Module m;
  (void)m.add_input_port("p", 1);
  const auto lib = cells::CellLibrary::egfet();
  sim::ActivityStats activity;
  activity.net_toggles.assign(m.num_nets(), 0);
  EXPECT_THROW((void)estimate(m, lib, activity, 0, 1, 10.0),
               std::invalid_argument);
  EXPECT_THROW((void)estimate(m, lib, activity, 1, 0, 10.0),
               std::invalid_argument);
  EXPECT_THROW((void)estimate(m, lib, activity, 1, 1, 0.0),
               std::invalid_argument);
  sim::ActivityStats small;
  EXPECT_THROW((void)estimate(m, lib, small, 1, 1, 10.0),
               std::invalid_argument);
}

TEST(Library, ScaledVariantScalesEverything) {
  const auto base = cells::CellLibrary::egfet();
  const auto scaled = base.scaled(2.0, 0.5, 3.0);
  EXPECT_DOUBLE_EQ(scaled.params(CellType::kNand2).area_mm2,
                   2.0 * base.params(CellType::kNand2).area_mm2);
  EXPECT_DOUBLE_EQ(scaled.params(CellType::kNand2).delay_ms,
                   0.5 * base.params(CellType::kNand2).delay_ms);
  EXPECT_DOUBLE_EQ(scaled.params(CellType::kNand2).static_power_uw,
                   3.0 * base.params(CellType::kNand2).static_power_uw);
}

}  // namespace
}  // namespace pml::power
