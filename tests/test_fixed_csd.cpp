// Canonical-signed-digit recoding: exactness, minimality, truncation.

#include <gtest/gtest.h>

#include <cstdlib>

#include "pml/fixed/csd.hpp"

namespace pml::fixed {
namespace {

TEST(Csd, KnownRecodings) {
  // 7 = 8 - 1
  const auto d7 = csd_recode(7);
  ASSERT_EQ(d7.size(), 2u);
  EXPECT_EQ(d7[0], (CsdDigit{.shift = 0, .sign = -1}));
  EXPECT_EQ(d7[1], (CsdDigit{.shift = 3, .sign = +1}));
  // 14 = 16 - 2
  EXPECT_EQ(csd_to_string(csd_recode(14)), "+2^4 -2^1");
  EXPECT_EQ(csd_to_string(csd_recode(0)), "0");
  EXPECT_TRUE(csd_recode(0).empty());
}

TEST(Csd, PowersOfTwoAreSingleDigit) {
  for (int s = 0; s < 40; ++s) {
    EXPECT_EQ(csd_cost(std::int64_t{1} << s), 1);
    EXPECT_EQ(csd_cost(-(std::int64_t{1} << s)), 1);
  }
}

// Property: recode is exact and non-adjacent for a wide range.
TEST(Csd, RoundTripAndNonAdjacency) {
  for (std::int64_t v = -4096; v <= 4096; ++v) {
    const auto digits = csd_recode(v);
    EXPECT_EQ(csd_value(digits), v);
    for (std::size_t i = 1; i < digits.size(); ++i) {
      EXPECT_GE(digits[i].shift - digits[i - 1].shift, 2)
          << "adjacent digits for " << v;
    }
  }
}

// Property: CSD digit count is at most ceil(bits/2) + 1 and no worse than
// the number of set bits.
TEST(Csd, CostBounds) {
  for (std::int64_t v = 1; v <= 4096; ++v) {
    const int cost = csd_cost(v);
    const int pop = __builtin_popcountll(static_cast<unsigned long long>(v));
    EXPECT_LE(cost, pop + 1);
    int bits = 0;
    std::int64_t t = v;
    while (t) {
      ++bits;
      t >>= 1;
    }
    EXPECT_LE(cost, bits / 2 + 1);
  }
}

TEST(CsdTruncate, KeepsMostSignificantDigits) {
  // 0b101010101 = 341 -> digits at shifts {0,2,4,6,8}
  const auto full = csd_recode(341);
  ASSERT_EQ(full.size(), 5u);
  const auto t2 = csd_truncate(full, 2);
  ASSERT_EQ(t2.size(), 2u);
  EXPECT_EQ(t2[0].shift, 6);
  EXPECT_EQ(t2[1].shift, 8);
  EXPECT_EQ(csd_value(t2), 256 + 64);
}

TEST(CsdTruncate, NoOpWhenShort) {
  const auto d = csd_recode(5);
  EXPECT_EQ(csd_truncate(d, 10), d);
  EXPECT_EQ(csd_truncate(d, static_cast<int>(d.size())), d);
}

TEST(CsdTruncate, ZeroDigitsGivesZero) {
  EXPECT_TRUE(csd_truncate(csd_recode(123), 0).empty());
  EXPECT_THROW((void)csd_truncate(csd_recode(3), -1), std::invalid_argument);
}

// Property: truncation error is bounded by the dropped digits' magnitude
// (< 2^(smallest kept shift)).
TEST(CsdTruncate, ErrorBound) {
  for (std::int64_t v = -2048; v <= 2048; v += 7) {
    const auto full = csd_recode(v);
    for (int keep = 1; keep <= 3; ++keep) {
      if (static_cast<int>(full.size()) <= keep) continue;
      const auto trunc = csd_truncate(full, keep);
      ASSERT_FALSE(trunc.empty());
      const std::int64_t err = std::llabs(v - csd_value(trunc));
      EXPECT_LT(err, std::int64_t{1} << trunc.front().shift)
          << "v=" << v << " keep=" << keep;
    }
  }
}

TEST(CsdValue, RejectsBadShift) {
  EXPECT_THROW((void)csd_value({CsdDigit{.shift = -1, .sign = 1}}),
               std::invalid_argument);
  EXPECT_THROW((void)csd_value({CsdDigit{.shift = 63, .sign = 1}}),
               std::invalid_argument);
}

}  // namespace
}  // namespace pml::fixed
