// Netlist IR: gate creation, constant folding, structural sharing, ports,
// groups, stats.

#include <gtest/gtest.h>

#include "pml/netlist/module.hpp"

namespace pml::netlist {
namespace {

TEST(CellTypes, ArityAndNames) {
  EXPECT_EQ(cell_num_inputs(CellType::kInv), 1);
  EXPECT_EQ(cell_num_inputs(CellType::kNand2), 2);
  EXPECT_EQ(cell_num_inputs(CellType::kMux2), 3);
  EXPECT_EQ(cell_num_inputs(CellType::kDff), 1);
  EXPECT_EQ(cell_type_name(CellType::kXnor2), "XNOR2");
}

TEST(EvalCell, TruthTables) {
  EXPECT_TRUE(eval_cell(CellType::kInv, false));
  EXPECT_TRUE(eval_cell(CellType::kNand2, true, false));
  EXPECT_FALSE(eval_cell(CellType::kNand2, true, true));
  EXPECT_TRUE(eval_cell(CellType::kXor2, true, false));
  EXPECT_FALSE(eval_cell(CellType::kXor2, true, true));
  EXPECT_TRUE(eval_cell(CellType::kMux2, false, true, true));   // sel=1 -> d1
  EXPECT_FALSE(eval_cell(CellType::kMux2, false, true, false)); // sel=0 -> d0
}

TEST(Module, ConstantFoldingTwoInput) {
  Module m;
  const auto a = m.add_input_port("a", 1)[0];
  EXPECT_EQ(m.and2(a, kConst0), kConst0);
  EXPECT_EQ(m.and2(a, kConst1), a);
  EXPECT_EQ(m.or2(a, kConst1), kConst1);
  EXPECT_EQ(m.or2(a, kConst0), a);
  EXPECT_EQ(m.xor2(a, kConst0), a);
  EXPECT_EQ(m.and2(a, a), a);
  EXPECT_EQ(m.or2(a, a), a);
  EXPECT_EQ(m.xor2(a, a), kConst0);
  EXPECT_EQ(m.xnor2(a, a), kConst1);
  EXPECT_EQ(m.cells().size(), 0u) << "all folds, no cells";
  // NAND/NOR with constants produce at most an inverter.
  const auto n = m.nand2(a, kConst1);
  EXPECT_EQ(m.cells().size(), 1u);
  EXPECT_EQ(m.cells()[0].type, CellType::kInv);
  EXPECT_EQ(m.nor2(a, kConst0), n) << "shares the same inverter via CSE";
}

TEST(Module, MuxFolding) {
  Module m;
  const auto d0 = m.add_input_port("d0", 1)[0];
  const auto d1 = m.add_input_port("d1", 1)[0];
  const auto s = m.add_input_port("s", 1)[0];
  EXPECT_EQ(m.mux2(d0, d1, kConst0), d0);
  EXPECT_EQ(m.mux2(d0, d1, kConst1), d1);
  EXPECT_EQ(m.mux2(d0, d0, s), d0);
  EXPECT_EQ(m.mux2(kConst0, kConst1, s), s);
  // mux(1, 0, s) = !s
  const auto inv_s = m.mux2(kConst1, kConst0, s);
  ASSERT_EQ(m.cells().size(), 1u);
  EXPECT_EQ(m.cells()[0].type, CellType::kInv);
  EXPECT_EQ(inv_s, m.inv(s));
  // Hardwired single-constant folds: mux(0, d1, s) = and(s, d1).
  const auto a = m.mux2(kConst0, d1, s);
  EXPECT_EQ(a, m.and2(s, d1));
}

TEST(Module, BuffersAreFree) {
  Module m;
  const auto a = m.add_input_port("a", 1)[0];
  EXPECT_EQ(m.buf(a), a);
  EXPECT_TRUE(m.cells().empty());
}

TEST(Module, StructuralSharing) {
  Module m;
  const auto p = m.add_input_port("p", 2);
  const auto x = m.xor2(p[0], p[1]);
  const auto y = m.xor2(p[1], p[0]);  // commutative normalization
  EXPECT_EQ(x, y);
  EXPECT_EQ(m.cells().size(), 1u);
  const auto z = m.and2(p[0], p[1]);
  EXPECT_NE(z, x);
  EXPECT_EQ(m.cells().size(), 2u);
}

TEST(Module, RawGatesAreNeverShared) {
  Module m;
  const auto p = m.add_input_port("p", 3);
  const auto a = m.add_gate_raw(CellType::kMux2, p[0], p[1], p[2]);
  const auto b = m.add_gate_raw(CellType::kMux2, p[0], p[1], p[2]);
  EXPECT_NE(a, b);
  EXPECT_EQ(m.cells().size(), 2u);
  // Even fully-constant raw gates are instantiated.
  const auto c = m.add_gate_raw(CellType::kAnd2, kConst1, kConst0);
  EXPECT_NE(c, kConst0);
  EXPECT_EQ(m.cells().size(), 3u);
}

TEST(Module, DffAndDriveNet) {
  Module m;
  const auto d = m.new_net();
  const auto q = m.dff(d, /*init=*/true);
  const auto inv_q = m.inv(q);
  m.drive_net(d, inv_q);  // toggle flop
  m.add_output_port("q", {q});
  EXPECT_EQ(m.validate(), std::nullopt);
  EXPECT_EQ(m.stats().num_dffs, 1u);
}

TEST(Module, Ports) {
  Module m("top");
  const auto in = m.add_input_port("x", 4);
  EXPECT_EQ(in.size(), 4u);
  m.add_output_port("y", {in[3], in[2]});
  ASSERT_NE(m.find_input("x"), nullptr);
  EXPECT_EQ(m.find_input("x")->nets.size(), 4u);
  EXPECT_EQ(m.find_input("y"), nullptr);
  ASSERT_NE(m.find_output("y"), nullptr);
  EXPECT_EQ(m.find_output("nope"), nullptr);
  EXPECT_TRUE(m.is_primary_input(in[0]));
  EXPECT_FALSE(m.is_primary_input(kConst0));
  EXPECT_THROW(m.add_input_port("z", 0), std::invalid_argument);
  EXPECT_THROW(m.add_output_port("bad", {kInvalidNet}), std::invalid_argument);
}

TEST(Module, GroupsAttributeCells) {
  Module m;
  const auto p = m.add_input_port("p", 2);
  m.begin_group("compute");
  (void)m.and2(p[0], p[1]);
  m.end_group();
  (void)m.or2(p[0], p[1]);
  const auto stats = m.stats();
  ASSERT_EQ(m.group_names().size(), 2u);
  EXPECT_EQ(m.group_names()[1], "compute");
  EXPECT_EQ(stats.counts_by_group[1][static_cast<int>(CellType::kAnd2)], 1u);
  EXPECT_EQ(stats.counts_by_group[0][static_cast<int>(CellType::kOr2)], 1u);
  // Re-entering a group by name reuses its id.
  const auto id = m.begin_group("compute");
  EXPECT_EQ(id, 1);
}

TEST(Module, StatsCountTypes) {
  Module m;
  const auto p = m.add_input_port("p", 2);
  (void)m.and2(p[0], p[1]);
  (void)m.xor2(p[0], p[1]);
  (void)m.dff(p[0]);
  const auto s = m.stats();
  EXPECT_EQ(s.num_cells, 3u);
  EXPECT_EQ(s.counts_by_type[static_cast<int>(CellType::kAnd2)], 1u);
  EXPECT_EQ(s.counts_by_type[static_cast<int>(CellType::kXor2)], 1u);
  EXPECT_EQ(s.counts_by_type[static_cast<int>(CellType::kDff)], 1u);
}

TEST(Module, DriverMap) {
  Module m;
  const auto p = m.add_input_port("p", 2);
  const auto x = m.and2(p[0], p[1]);
  const auto drivers = m.driver_map();
  EXPECT_EQ(drivers[x], 0);
  EXPECT_EQ(drivers[p[0]], -1);
  EXPECT_EQ(drivers[kConst0], -1);
}

TEST(Module, FanoutCounts) {
  Module m;
  const auto p = m.add_input_port("p", 2);
  const auto x = m.and2(p[0], p[1]);   // cell 0 reads p0, p1
  const auto y = m.xor2(x, p[0]);      // cell 1 reads x, p0
  m.add_output_port("y", {y, x});      // ports read y and x

  const auto fanout = m.fanout_counts();
  EXPECT_EQ(fanout[p[0]], 2u);
  EXPECT_EQ(fanout[p[1]], 1u);
  EXPECT_EQ(fanout[x], 2u);  // cell 1 + output port
  EXPECT_EQ(fanout[y], 1u);  // output port only
}

TEST(Module, ApplyRewriteSubstitutesDropsAndCompacts) {
  Module m;
  const auto p = m.add_input_port("p", 2);
  const auto a = m.add_gate_raw(CellType::kAnd2, p[0], p[1]);  // cell 0
  const auto b = m.add_gate_raw(CellType::kBuf, a);            // cell 1
  const auto c = m.add_gate_raw(CellType::kXor2, b, p[0]);     // cell 2
  m.add_output_port("y", {c, b});
  const std::size_t nets_before = m.num_nets();

  // Dissolve the buffer: reads of b become reads of a, cell 1 dropped.
  std::vector<NetId> map(m.num_nets());
  for (std::size_t n = 0; n < map.size(); ++n) map[n] = static_cast<NetId>(n);
  map[b] = a;
  std::vector<bool> keep{true, false, true};
  const auto stats = m.apply_rewrite(map, keep);

  EXPECT_EQ(stats.cells_removed, 1u);
  EXPECT_EQ(stats.nets_removed, 1u);  // b's net is gone
  EXPECT_EQ(m.num_nets(), nets_before - 1);
  ASSERT_EQ(m.cells().size(), 2u);
  EXPECT_EQ(m.cells()[1].in[0], m.cells()[0].out);  // XOR now reads a
  // Ports survive with names/widths; output remapped onto a.
  ASSERT_EQ(m.output_ports().size(), 1u);
  EXPECT_EQ(m.output_ports()[0].nets[1], m.cells()[0].out);
  EXPECT_TRUE(m.is_primary_input(m.input_ports()[0].nets[0]));
  EXPECT_EQ(m.validate(), std::nullopt);
}

TEST(Module, ApplyRewriteResolvesSubstitutionChains) {
  Module m;
  const auto p = m.add_input_port("p", 1);
  const auto b1 = m.add_gate_raw(CellType::kBuf, p[0]);
  const auto b2 = m.add_gate_raw(CellType::kBuf, b1);
  m.add_output_port("y", {b2});

  std::vector<NetId> map(m.num_nets());
  for (std::size_t n = 0; n < map.size(); ++n) map[n] = static_cast<NetId>(n);
  map[b2] = b1;  // chain: b2 -> b1 -> p0
  map[b1] = p[0];
  const auto stats = m.apply_rewrite(map, std::vector<bool>{false, false});
  EXPECT_EQ(stats.cells_removed, 2u);
  EXPECT_EQ(m.output_ports()[0].nets[0], m.input_ports()[0].nets[0]);
  EXPECT_EQ(m.validate(), std::nullopt);
}

TEST(Module, ApplyRewriteKeepsUnreadInputPorts) {
  Module m;
  const auto p = m.add_input_port("p", 3);
  const auto x = m.add_gate_raw(CellType::kInv, p[0]);  // p1, p2 unread
  m.add_output_port("y", {x});
  std::vector<NetId> map(m.num_nets());
  for (std::size_t n = 0; n < map.size(); ++n) map[n] = static_cast<NetId>(n);
  (void)m.apply_rewrite(map, std::vector<bool>{true});
  ASSERT_EQ(m.input_ports()[0].nets.size(), 3u);
  for (const NetId n : m.input_ports()[0].nets) {
    EXPECT_TRUE(m.is_primary_input(n));
  }
  EXPECT_EQ(m.validate(), std::nullopt);
}

TEST(Module, ApplyRewriteRejectsBadSizes) {
  Module m;
  const auto p = m.add_input_port("p", 1);
  (void)m.inv(p[0]);
  EXPECT_THROW((void)m.apply_rewrite(std::vector<NetId>{0, 1},
                                     std::vector<bool>{true}),
               std::invalid_argument);
  std::vector<NetId> map(m.num_nets());
  for (std::size_t n = 0; n < map.size(); ++n) map[n] = static_cast<NetId>(n);
  EXPECT_THROW((void)m.apply_rewrite(map, std::vector<bool>{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace pml::netlist
