// Unit and property tests for fixed-point formats.

#include <gtest/gtest.h>

#include <cmath>

#include "pml/fixed/format.hpp"

namespace pml::fixed {
namespace {

TEST(FixedFormat, BasicProperties) {
  const FixedFormat f{.total_bits = 6, .frac_bits = 4, .is_signed = true};
  EXPECT_EQ(f.integer_bits(), 1);
  EXPECT_EQ(f.min_code(), -32);
  EXPECT_EQ(f.max_code(), 31);
  EXPECT_DOUBLE_EQ(f.lsb(), 1.0 / 16.0);
  EXPECT_DOUBLE_EQ(f.min_value(), -2.0);
  EXPECT_DOUBLE_EQ(f.max_value(), 31.0 / 16.0);
  EXPECT_EQ(f.to_string(), "s6q4");
}

TEST(FixedFormat, UnsignedProperties) {
  const FixedFormat f{.total_bits = 4, .frac_bits = 4, .is_signed = false};
  EXPECT_EQ(f.min_code(), 0);
  EXPECT_EQ(f.max_code(), 15);
  EXPECT_DOUBLE_EQ(f.max_value(), 15.0 / 16.0);
  EXPECT_EQ(f.to_string(), "u4q4");
}

TEST(Quantize, RoundsToNearest) {
  const FixedFormat f{.total_bits = 8, .frac_bits = 4, .is_signed = true};
  EXPECT_EQ(quantize(0.5, f), 8);
  EXPECT_EQ(quantize(0.53, f), 8);
  EXPECT_EQ(quantize(0.47, f), 8);  // 7.52 -> 8
  EXPECT_EQ(quantize(-0.5, f), -8);
  EXPECT_EQ(quantize(0.0, f), 0);
}

TEST(Quantize, TruncateRoundsDown) {
  const FixedFormat f{.total_bits = 8, .frac_bits = 4, .is_signed = true};
  EXPECT_EQ(quantize(0.99, f, Rounding::kTruncate), 15);
  EXPECT_EQ(quantize(-0.01, f, Rounding::kTruncate), -1);
}

TEST(Quantize, SaturatesAtBounds) {
  const FixedFormat f{.total_bits = 4, .frac_bits = 2, .is_signed = true};
  EXPECT_EQ(quantize(100.0, f), f.max_code());
  EXPECT_EQ(quantize(-100.0, f), f.min_code());
  EXPECT_EQ(quantize(1e300, f), f.max_code());
  EXPECT_EQ(quantize(-1e300, f), f.min_code());
}

TEST(Quantize, RejectsBadWidths) {
  EXPECT_THROW((void)quantize(1.0, FixedFormat{.total_bits = 0}),
               std::invalid_argument);
  EXPECT_THROW((void)quantize(1.0, FixedFormat{.total_bits = 63}),
               std::invalid_argument);
}

TEST(Dequantize, InvertsQuantizeOnGrid) {
  const FixedFormat f{.total_bits = 10, .frac_bits = 6, .is_signed = true};
  for (std::int64_t code = f.min_code(); code <= f.max_code(); ++code) {
    EXPECT_EQ(quantize(dequantize(code, f), f), code);
  }
}

TEST(Saturate, ClampsToRange) {
  const FixedFormat f{.total_bits = 5, .frac_bits = 0, .is_signed = true};
  EXPECT_EQ(saturate(100, f), 15);
  EXPECT_EQ(saturate(-100, f), -16);
  EXPECT_EQ(saturate(7, f), 7);
}

TEST(BitsForCode, MinimalWidths) {
  EXPECT_EQ(bits_for_code(0), 1);
  EXPECT_EQ(bits_for_code(1), 2);
  EXPECT_EQ(bits_for_code(-1), 1);
  EXPECT_EQ(bits_for_code(-2), 2);
  EXPECT_EQ(bits_for_code(3), 3);
  EXPECT_EQ(bits_for_code(-4), 3);
  EXPECT_EQ(bits_for_code(127), 8);
  EXPECT_EQ(bits_for_code(-128), 8);
  EXPECT_EQ(bits_for_code(128), 9);
}

TEST(SignExtend, RecoversNegatives) {
  EXPECT_EQ(sign_extend(0b1111, 4), -1);
  EXPECT_EQ(sign_extend(0b0111, 4), 7);
  EXPECT_EQ(sign_extend(0b1000, 4), -8);
  EXPECT_EQ(sign_extend(0xFF, 8), -1);
  EXPECT_THROW((void)sign_extend(0, 0), std::invalid_argument);
}

TEST(CodeBit, ExtractsBits) {
  EXPECT_TRUE(code_bit(-1, 0));
  EXPECT_TRUE(code_bit(-1, 62));
  EXPECT_TRUE(code_bit(4, 2));
  EXPECT_FALSE(code_bit(4, 0));
}

// Property: quantization error is at most half an LSB inside the range.
class RoundTripProperty
    : public ::testing::TestWithParam<std::tuple<int, int, bool>> {};

TEST_P(RoundTripProperty, ErrorBounded) {
  const auto [total, frac, is_signed] = GetParam();
  const FixedFormat f{.total_bits = total, .frac_bits = frac,
                      .is_signed = is_signed};
  const double lo = f.min_value();
  const double hi = f.max_value();
  for (int i = 0; i <= 200; ++i) {
    const double v = lo + (hi - lo) * i / 200.0;
    const double back = quantize_value(v, f);
    EXPECT_LE(std::fabs(back - v), f.lsb() / 2 + 1e-12)
        << "value " << v << " in " << f.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Formats, RoundTripProperty,
    ::testing::Values(std::make_tuple(4, 4, false), std::make_tuple(4, 3, true),
                      std::make_tuple(6, 4, true), std::make_tuple(8, 8, false),
                      std::make_tuple(8, 6, true), std::make_tuple(10, 2, true),
                      std::make_tuple(12, 12, true),
                      std::make_tuple(16, 8, true)));

// Property: negative frac_bits (coarse grids) still work.
TEST(Quantize, CoarseGrid) {
  const FixedFormat f{.total_bits = 4, .frac_bits = -2, .is_signed = true};
  EXPECT_DOUBLE_EQ(f.lsb(), 4.0);
  EXPECT_EQ(quantize(9.0, f), 2);  // 9/4 = 2.25 -> 2
  EXPECT_DOUBLE_EQ(dequantize(2, f), 8.0);
}

}  // namespace
}  // namespace pml::fixed
