// The evaluation harness: verification gating, report fields, failure
// injection.

#include <gtest/gtest.h>

#include "pml/arch/sequential_svm.hpp"
#include "pml/core/evaluate.hpp"

namespace pml::core {
namespace {

quant::QuantizedSvm tiny_model() {
  quant::QuantizedSvm q;
  q.strategy = ml::MulticlassStrategy::kOneVsRest;
  q.num_classes = 3;
  q.input_format = quant::input_format(3);
  q.weight_format =
      fixed::FixedFormat{.total_bits = 4, .frac_bits = 3, .is_signed = true};
  q.classifiers = {quant::QuantizedClassifier{{3, -2}, 1},
                   quant::QuantizedClassifier{{-1, 4}, 0},
                   quant::QuantizedClassifier{{2, 2}, -3}};
  return q;
}

CircuitWorkload make_workload(const quant::QuantizedSvm& q) {
  CircuitWorkload wl;
  for (std::int64_t a = 0; a <= 7; ++a) {
    for (std::int64_t b = 0; b <= 7; ++b) {
      wl.feature_codes.push_back({a, b});
      wl.expected_class.push_back(q.predict_codes({a, b}));
    }
  }
  return wl;
}

TEST(Evaluate, ProducesConsistentReport) {
  const auto q = tiny_model();
  auto circuit = arch::build_sequential_svm(q);
  const auto lib = cells::CellLibrary::egfet();
  const auto wl = make_workload(q);
  const HardwareReport rep =
      evaluate_circuit(circuit.module, circuit.cycles_per_inference, lib, wl);

  EXPECT_TRUE(rep.verified);
  EXPECT_EQ(rep.verified_samples, wl.feature_codes.size());
  EXPECT_GT(rep.area_cm2, 0.0);
  EXPECT_GT(rep.static_mw, 0.0);
  EXPECT_GT(rep.dynamic_mw, 0.0);
  EXPECT_NEAR(rep.power_mw, rep.static_mw + rep.dynamic_mw, 1e-9);
  EXPECT_GT(rep.frequency_hz, 0.0);
  // latency = cycles / frequency.
  EXPECT_NEAR(rep.latency_ms, 3.0 * 1000.0 / rep.frequency_hz, 1e-6);
  EXPECT_NEAR(rep.energy_mj, rep.power_mw * rep.latency_ms / 1000.0, 1e-9);
  EXPECT_EQ(rep.cycles_per_inference, 3);
  EXPECT_GT(rep.num_cells, 0u);
  EXPECT_GT(rep.num_dffs, 0u);
  EXPECT_GT(rep.logic_depth, 0);
  EXPECT_FALSE(rep.groups.empty());
}

TEST(Evaluate, ThrowsOnModelMismatch) {
  const auto q = tiny_model();
  auto circuit = arch::build_sequential_svm(q);
  const auto lib = cells::CellLibrary::egfet();
  auto wl = make_workload(q);
  // Corrupt one expectation.
  wl.expected_class[5] = (wl.expected_class[5] + 1) % 3;
  EXPECT_THROW((void)evaluate_circuit(circuit.module,
                                      circuit.cycles_per_inference, lib, wl),
               std::runtime_error);
}

TEST(Evaluate, MismatchToleratedWhenNotBitExactRequired) {
  const auto q = tiny_model();
  auto circuit = arch::build_sequential_svm(q);
  const auto lib = cells::CellLibrary::egfet();
  auto wl = make_workload(q);
  wl.expected_class[5] = (wl.expected_class[5] + 1) % 3;
  EvaluateOptions opts;
  opts.require_bit_exact = false;
  const HardwareReport rep = evaluate_circuit(
      circuit.module, circuit.cycles_per_inference, lib, wl, opts);
  EXPECT_FALSE(rep.verified);
}

TEST(Evaluate, RejectsEmptyOrMalformedWorkloads) {
  const auto q = tiny_model();
  auto circuit = arch::build_sequential_svm(q);
  const auto lib = cells::CellLibrary::egfet();
  CircuitWorkload empty;
  EXPECT_THROW((void)evaluate_circuit(circuit.module, 3, lib, empty),
               std::invalid_argument);
  CircuitWorkload lopsided;
  lopsided.feature_codes = {{1, 2}};
  EXPECT_THROW((void)evaluate_circuit(circuit.module, 3, lib, lopsided),
               std::invalid_argument);
}

TEST(Evaluate, PowerSampleSubsetStillFillsReport) {
  const auto q = tiny_model();
  auto circuit = arch::build_sequential_svm(q);
  const auto lib = cells::CellLibrary::egfet();
  const auto wl = make_workload(q);
  EvaluateOptions opts;
  opts.power_samples = 4;
  const HardwareReport rep = evaluate_circuit(
      circuit.module, circuit.cycles_per_inference, lib, wl, opts);
  EXPECT_TRUE(rep.verified);
  EXPECT_GT(rep.dynamic_mw, 0.0);
}

}  // namespace
}  // namespace pml::core
