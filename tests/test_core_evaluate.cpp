// The evaluation harness: verification gating, report fields, failure
// injection.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "pml/arch/sequential_svm.hpp"
#include "pml/core/evaluate.hpp"

namespace pml::core {
namespace {

quant::QuantizedSvm tiny_model() {
  quant::QuantizedSvm q;
  q.strategy = ml::MulticlassStrategy::kOneVsRest;
  q.num_classes = 3;
  q.input_format = quant::input_format(3);
  q.weight_format =
      fixed::FixedFormat{.total_bits = 4, .frac_bits = 3, .is_signed = true};
  q.classifiers = {quant::QuantizedClassifier{{3, -2}, 1},
                   quant::QuantizedClassifier{{-1, 4}, 0},
                   quant::QuantizedClassifier{{2, 2}, -3}};
  return q;
}

CircuitWorkload make_workload(const quant::QuantizedSvm& q) {
  CircuitWorkload wl;
  for (std::int64_t a = 0; a <= 7; ++a) {
    for (std::int64_t b = 0; b <= 7; ++b) {
      wl.feature_codes.push_back({a, b});
      wl.expected_class.push_back(q.predict_codes({a, b}));
    }
  }
  return wl;
}

TEST(Evaluate, ProducesConsistentReport) {
  const auto q = tiny_model();
  auto circuit = arch::build_sequential_svm(q);
  const auto lib = cells::CellLibrary::egfet();
  const auto wl = make_workload(q);
  const HardwareReport rep =
      evaluate_circuit(circuit.module, circuit.cycles_per_inference, lib, wl);

  EXPECT_TRUE(rep.verified);
  EXPECT_EQ(rep.verified_samples, wl.feature_codes.size());
  EXPECT_GT(rep.area_cm2, 0.0);
  EXPECT_GT(rep.static_mw, 0.0);
  EXPECT_GT(rep.dynamic_mw, 0.0);
  EXPECT_NEAR(rep.power_mw, rep.static_mw + rep.dynamic_mw, 1e-9);
  EXPECT_GT(rep.frequency_hz, 0.0);
  // latency = cycles / frequency.
  EXPECT_NEAR(rep.latency_ms, 3.0 * 1000.0 / rep.frequency_hz, 1e-6);
  EXPECT_NEAR(rep.energy_mj, rep.power_mw * rep.latency_ms / 1000.0, 1e-9);
  EXPECT_EQ(rep.cycles_per_inference, 3);
  EXPECT_GT(rep.num_cells, 0u);
  EXPECT_GT(rep.num_dffs, 0u);
  EXPECT_GT(rep.logic_depth, 0);
  EXPECT_FALSE(rep.groups.empty());
}

TEST(Evaluate, ThrowsOnModelMismatch) {
  const auto q = tiny_model();
  auto circuit = arch::build_sequential_svm(q);
  const auto lib = cells::CellLibrary::egfet();
  auto wl = make_workload(q);
  // Corrupt one expectation.
  wl.expected_class[5] = (wl.expected_class[5] + 1) % 3;
  EXPECT_THROW((void)evaluate_circuit(circuit.module,
                                      circuit.cycles_per_inference, lib, wl),
               std::runtime_error);
}

TEST(Evaluate, MismatchToleratedWhenNotBitExactRequired) {
  const auto q = tiny_model();
  auto circuit = arch::build_sequential_svm(q);
  const auto lib = cells::CellLibrary::egfet();
  auto wl = make_workload(q);
  wl.expected_class[5] = (wl.expected_class[5] + 1) % 3;
  EvaluateOptions opts;
  opts.require_bit_exact = false;
  const HardwareReport rep = evaluate_circuit(
      circuit.module, circuit.cycles_per_inference, lib, wl, opts);
  EXPECT_FALSE(rep.verified);
}

TEST(Evaluate, RejectsEmptyOrMalformedWorkloads) {
  const auto q = tiny_model();
  auto circuit = arch::build_sequential_svm(q);
  const auto lib = cells::CellLibrary::egfet();
  CircuitWorkload empty;
  EXPECT_THROW((void)evaluate_circuit(circuit.module, 3, lib, empty),
               std::invalid_argument);
  CircuitWorkload lopsided;
  lopsided.feature_codes = {{1, 2}};
  EXPECT_THROW((void)evaluate_circuit(circuit.module, 3, lib, lopsided),
               std::invalid_argument);
}

TEST(Evaluate, HonorsCallerMaxMismatches) {
  const auto q = tiny_model();
  auto circuit = arch::build_sequential_svm(q);
  const auto lib = cells::CellLibrary::egfet();
  // Two batches' worth of samples, every expectation corrupted.
  const auto base = make_workload(q);
  CircuitWorkload wl = base;
  wl.feature_codes.insert(wl.feature_codes.end(), base.feature_codes.begin(),
                          base.feature_codes.end());
  wl.expected_class.insert(wl.expected_class.end(), base.expected_class.begin(),
                           base.expected_class.end());
  for (auto& e : wl.expected_class) e = (e + 1) % 3;

  // Default options + no bit-exactness: every mismatch is counted.
  EvaluateOptions count_all;
  count_all.require_bit_exact = false;
  const HardwareReport all = evaluate_circuit(
      circuit.module, circuit.cycles_per_inference, lib, wl, count_all);
  EXPECT_FALSE(all.verified);
  EXPECT_EQ(all.verified_mismatches, wl.feature_codes.size());

  // A caller-set cap stops the scan early instead of being overwritten.
  // Pin the 64-lane backend so "early" is observable: a wider backend
  // scans this whole workload in its first batch.
  EvaluateOptions capped = count_all;
  capped.verify.max_mismatches = 1;
  capped.verify.num_threads = 1;
  capped.backend = sim::Backend::kU64;
  const HardwareReport few = evaluate_circuit(
      circuit.module, circuit.cycles_per_inference, lib, wl, capped);
  EXPECT_FALSE(few.verified);
  EXPECT_GE(few.verified_mismatches, 1u);
  EXPECT_LT(few.verified_mismatches, wl.feature_codes.size());

  // With bit-exactness on, an explicit cap is honored too (the old code
  // silently forced fail-fast): the thrown message carries the full count.
  EvaluateOptions exact;
  exact.verify.max_mismatches = wl.feature_codes.size();
  try {
    (void)evaluate_circuit(circuit.module, circuit.cycles_per_inference, lib,
                           wl, exact);
    FAIL() << "expected a mismatch throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(
                  std::to_string(wl.feature_codes.size()) +
                  " mismatch(es)"),
              std::string::npos)
        << e.what();
  }
}

TEST(Evaluate, PowerReplayDeterministicAcrossThreadCounts) {
  const auto q = tiny_model();
  auto circuit = arch::build_sequential_svm(q);
  const auto lib = cells::CellLibrary::egfet();
  const auto wl = make_workload(q);
  EvaluateOptions single;
  single.power_threads = 1;
  single.power_chunk_samples = 4;
  EvaluateOptions multi = single;
  multi.power_threads = 4;
  const HardwareReport a = evaluate_circuit(
      circuit.module, circuit.cycles_per_inference, lib, wl, single);
  const HardwareReport b = evaluate_circuit(
      circuit.module, circuit.cycles_per_inference, lib, wl, multi);
  // The merged activity is deterministic in the chunking alone, so the
  // power numbers are bit-identical across worker configurations.
  EXPECT_EQ(a.dynamic_mw, b.dynamic_mw);
  EXPECT_EQ(a.energy_mj, b.energy_mj);
}

TEST(Evaluate, PowerSampleSubsetStillFillsReport) {
  const auto q = tiny_model();
  auto circuit = arch::build_sequential_svm(q);
  const auto lib = cells::CellLibrary::egfet();
  const auto wl = make_workload(q);
  EvaluateOptions opts;
  opts.power_samples = 4;
  const HardwareReport rep = evaluate_circuit(
      circuit.module, circuit.cycles_per_inference, lib, wl, opts);
  EXPECT_TRUE(rep.verified);
  EXPECT_GT(rep.dynamic_mw, 0.0);
}

}  // namespace
}  // namespace pml::core
