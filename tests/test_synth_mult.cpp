// Multipliers: general array, signed-x-unsigned, truncated, bespoke CSD.

#include <gtest/gtest.h>

#include "pml/netlist/module.hpp"
#include "pml/synth/mult.hpp"
#include "sim_test_util.hpp"

namespace pml::synth {
namespace {

using netlist::Module;
using testutil::Harness;

std::int64_t sext_val(std::uint64_t raw, int bits) {
  const std::int64_t v = static_cast<std::int64_t>(raw);
  return (raw & (1ull << (bits - 1))) ? v - (std::int64_t{1} << bits) : v;
}

class MultWidths : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(MultWidths, UnsignedExhaustive) {
  const auto [wa, wb] = GetParam();
  Module m;
  const Bus a{m.add_input_port("a", wa)};
  const Bus b{m.add_input_port("b", wb)};
  const Bus p = mult_unsigned(m, a, b);
  EXPECT_EQ(p.width(), wa + wb);
  Harness h(m);
  for (std::uint64_t ra = 0; ra < (1ull << wa); ++ra) {
    for (std::uint64_t rb = 0; rb < (1ull << wb); ++rb) {
      h.set("a", ra);
      h.set("b", rb);
      h.run();
      EXPECT_EQ(h.unsigned_of(p), ra * rb);
    }
  }
}

TEST_P(MultWidths, SignedUnsignedExhaustive) {
  const auto [ww, wx] = GetParam();
  Module m;
  const Bus w{m.add_input_port("w", ww)};
  const Bus x{m.add_input_port("x", wx)};
  const Bus p = mult_signed_unsigned(m, w, x);
  EXPECT_EQ(p.width(), ww + wx);
  Harness h(m);
  for (std::uint64_t rw = 0; rw < (1ull << ww); ++rw) {
    for (std::uint64_t rx = 0; rx < (1ull << wx); ++rx) {
      h.set("w", rw);
      h.set("x", rx);
      h.run();
      EXPECT_EQ(h.signed_of(p),
                sext_val(rw, ww) * static_cast<std::int64_t>(rx));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, MultWidths,
                         ::testing::Values(std::make_pair(1, 1),
                                           std::make_pair(2, 3),
                                           std::make_pair(3, 2),
                                           std::make_pair(4, 4),
                                           std::make_pair(5, 3),
                                           std::make_pair(6, 4)));

TEST(TruncatedMult, MatchesColumnDropModel) {
  // Truncation drops partial-product columns below `drop`: the hardware
  // computes sum_j (floor(w / 2^max(0, drop-j)) << (j + max(0,drop-j))) /
  // 2^drop... verified here against the same arithmetic the integer model
  // uses: sum of arithmetically-shifted partial products.
  for (int drop : {1, 2, 3}) {
    Module m;
    const Bus w{m.add_input_port("w", 4)};
    const Bus x{m.add_input_port("x", 3)};
    const Bus p = mult_signed_unsigned_truncated(m, w, x, drop);
    Harness h(m);
    for (std::uint64_t rw = 0; rw < 16; ++rw) {
      for (std::uint64_t rx = 0; rx < 8; ++rx) {
        h.set("w", rw);
        h.set("x", rx);
        h.run();
        std::int64_t expected = 0;
        for (int j = 0; j < 3; ++j) {
          if (((rx >> j) & 1) == 0) continue;
          const int lo = std::max(0, drop - j);
          if (lo >= 4) continue;
          expected += (sext_val(rw, 4) >> lo) << (j + lo);
        }
        // Result columns below `drop` are zero by construction.
        expected = (expected >> drop) << drop;
        EXPECT_EQ(h.signed_of(p), expected)
            << "drop=" << drop << " w=" << sext_val(rw, 4) << " x=" << rx;
      }
    }
  }
}

TEST(TruncatedMult, ZeroDropIsExact) {
  Module m;
  const Bus w{m.add_input_port("w", 4)};
  const Bus x{m.add_input_port("x", 4)};
  const Bus p = mult_signed_unsigned_truncated(m, w, x, 0);
  Harness h(m);
  for (std::uint64_t rw = 0; rw < 16; ++rw) {
    for (std::uint64_t rx = 0; rx < 16; ++rx) {
      h.set("w", rw);
      h.set("x", rx);
      h.run();
      EXPECT_EQ(h.signed_of(p),
                sext_val(rw, 4) * static_cast<std::int64_t>(rx));
    }
  }
}

class CsdConstant : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(CsdConstant, ConstMultExhaustive) {
  const std::int64_t c = GetParam();
  Module m;
  const Bus x{m.add_input_port("x", 5)};
  const Bus p = mult_const_csd(m, c, x);
  Harness h(m);
  for (std::uint64_t rx = 0; rx < 32; ++rx) {
    h.set("x", rx);
    h.run();
    EXPECT_EQ(h.signed_of(p), c * static_cast<std::int64_t>(rx))
        << "c=" << c << " x=" << rx;
  }
}

INSTANTIATE_TEST_SUITE_P(Constants, CsdConstant,
                         ::testing::Values(0, 1, -1, 2, -2, 3, -3, 5, 7, -7,
                                           11, 14, -14, 15, 23, -23, 64, 85,
                                           -85, 127, -128));

TEST(CsdConstMult, ZeroCostsNothing) {
  Module m;
  const Bus x{m.add_input_port("x", 4)};
  (void)mult_const_csd(m, 0, x);
  EXPECT_TRUE(m.cells().empty());
}

TEST(CsdConstMult, PowerOfTwoIsFree) {
  Module m;
  const Bus x{m.add_input_port("x", 4)};
  const Bus p = mult_const_csd(m, 8, x);
  EXPECT_TRUE(m.cells().empty()) << "pure shift requires no gates";
  Harness h(m);
  h.set("x", 5);
  h.run();
  EXPECT_EQ(h.signed_of(p), 40);
}

TEST(CsdConstMult, CheaperThanGeneralMultiplier) {
  Module m1, m2;
  const Bus x1{m1.add_input_port("x", 6)};
  const Bus x2{m2.add_input_port("x", 6)};
  (void)mult_const_csd(m1, 37, x1);
  const Bus w{m2.add_input_port("w", 7)};
  (void)mult_signed_unsigned(m2, w, x2);
  EXPECT_LT(m1.cells().size(), m2.cells().size() / 2)
      << "bespoke constant multiplier must be much smaller";
}

TEST(CsdDigitsMult, TruncatedDigitsMatchTruncatedValue) {
  const std::int64_t c = 0b101010101;  // 341, 5 CSD digits
  const auto digits = fixed::csd_truncate(fixed::csd_recode(c), 2);
  const std::int64_t c_trunc = fixed::csd_value(digits);
  Module m;
  const Bus x{m.add_input_port("x", 4)};
  const Bus p = mult_csd_digits(m, digits, x);
  Harness h(m);
  for (std::uint64_t rx = 0; rx < 16; ++rx) {
    h.set("x", rx);
    h.run();
    EXPECT_EQ(h.signed_of(p), c_trunc * static_cast<std::int64_t>(rx));
  }
}

}  // namespace
}  // namespace pml::synth
